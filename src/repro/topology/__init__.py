"""Virtual topologies: the communication graphs of neighborhood collectives.

:class:`DistGraphTopology` mirrors the semantics of
``MPI_Dist_graph_create_adjacent``: each rank has explicit *incoming* and
*outgoing* neighbor lists.  Generators cover the paper's workloads:
Erdős–Rényi random sparse graphs (Section VII-A), Moore neighborhoods
(Section VII-B), Cartesian stencils, and topologies induced by the sparsity
structure of a matrix (Section VII-C's SpMM kernel).
"""

from repro.topology.graph import DistGraphTopology
from repro.topology.random_graphs import erdos_renyi_topology
from repro.topology.moore import dims_create, moore_topology
from repro.topology.cartesian import cartesian_topology
from repro.topology.from_matrix import topology_from_sparse
from repro.topology.scale_free import hub_spoke_topology, scale_free_topology

__all__ = [
    "DistGraphTopology",
    "erdos_renyi_topology",
    "moore_topology",
    "dims_create",
    "cartesian_topology",
    "topology_from_sparse",
    "scale_free_topology",
    "hub_spoke_topology",
]
