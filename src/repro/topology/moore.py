"""Moore neighborhoods on a d-dimensional periodic grid (paper Section VII-B).

Ranks sit on a ``d``-dimensional grid; each rank's neighbors are all ranks
within Chebyshev distance ``r`` — exactly ``(2r+1)^d - 1`` neighbors, the
count the paper quotes, which requires periodic (torus) boundaries.  Grid
extents come from :func:`dims_create`, a balanced factorization equivalent
to ``MPI_Dims_create``.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.topology.graph import DistGraphTopology
from repro.utils.validation import check_positive


def dims_create(n: int, ndims: int) -> tuple[int, ...]:
    """Balanced factorization of ``n`` into ``ndims`` factors, largest first.

    Mirrors ``MPI_Dims_create(n, ndims)``: repeatedly assign the largest
    prime factor to the currently smallest dimension, then sort descending.
    """
    n = check_positive("n", n)
    ndims = check_positive("ndims", ndims)
    dims = [1] * ndims
    for prime in _prime_factors_desc(n):
        dims.sort()
        dims[0] *= prime
    return tuple(sorted(dims, reverse=True))


def _prime_factors_desc(n: int) -> list[int]:
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def moore_topology(
    n: int,
    r: int = 1,
    d: int = 2,
    dims: tuple[int, ...] | None = None,
) -> DistGraphTopology:
    """Moore neighborhood of radius ``r`` on a ``d``-dimensional periodic grid.

    Parameters
    ----------
    n:
        Number of ranks (must equal the product of ``dims`` if given).
    r:
        Neighborhood radius (Chebyshev distance).
    d:
        Grid dimensionality (ignored when explicit ``dims`` are given).
    dims:
        Explicit grid extents; default is :func:`dims_create(n, d)`.

    Notes
    -----
    Each rank gets ``(2r+1)^d - 1`` neighbors *unless* a grid extent is
    smaller than ``2r+1``, in which case offsets wrap onto each other and
    the neighborhood is the full extent in that dimension (deduplicated).
    The graph is symmetric: in- and out-neighbor sets coincide.
    """
    n = check_positive("n", n)
    r = check_positive("r", r)
    if dims is None:
        d = check_positive("d", d)
        dims = dims_create(n, d)
    else:
        dims = tuple(check_positive("dims[i]", x) for x in dims)
        d = len(dims)
    if math.prod(dims) != n:
        raise ValueError(f"dims {dims} do not multiply to n={n}")

    strides = np.array([math.prod(dims[i + 1 :]) for i in range(d)], dtype=np.int64)
    dims_arr = np.array(dims, dtype=np.int64)

    # All ranks' coordinates at once: coords[u] = grid coordinate of rank u.
    ranks = np.arange(n, dtype=np.int64)
    coords = (ranks[:, None] // strides[None, :]) % dims_arr[None, :]

    offsets = np.array(
        [off for off in itertools.product(range(-r, r + 1), repeat=d) if any(off)],
        dtype=np.int64,
    )

    out_lists: list[list[int]] = []
    for u in range(n):
        nbr_coords = (coords[u][None, :] + offsets) % dims_arr[None, :]
        nbr_ranks = nbr_coords @ strides
        nbrs = set(int(x) for x in nbr_ranks)
        nbrs.discard(u)  # offsets wrapping fully around land on u itself
        out_lists.append(sorted(nbrs))
    return DistGraphTopology(n, out_lists)


def moore_neighbor_count(r: int, d: int) -> int:
    """``(2r+1)^d - 1`` — the paper's neighbor-count formula."""
    check_positive("r", r)
    check_positive("d", d)
    return (2 * r + 1) ** d - 1
