"""The distributed-graph virtual topology.

Follows ``MPI_Dist_graph_create_adjacent``: the topology is a directed graph
over ranks; an edge ``u -> v`` means *u sends to v* in a neighborhood
collective (v is an *outgoing neighbor* of u; u is an *incoming neighbor* of
v).  Neighbor lists are stored sorted and deduplicated; order of a rank's
incoming list defines its receive-buffer layout, exactly as MPI defines the
``recvbuf`` block order of ``MPI_Neighbor_allgather``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.utils.validation import check_positive


class DistGraphTopology:
    """Immutable directed communication graph over ``n`` ranks."""

    __slots__ = ("_n", "_out", "_in", "_n_edges")

    def __init__(self, n: int, out_neighbors: Mapping[int, Iterable[int]] | Sequence[Iterable[int]]):
        """Build from per-rank outgoing neighbor lists.

        Parameters
        ----------
        n:
            Number of ranks.
        out_neighbors:
            ``out_neighbors[u]`` iterates u's outgoing neighbors.  Missing
            ranks (for mappings) have no outgoing edges.  Duplicates are
            dropped; self-loops are allowed (MPI permits them) and handled
            by the collectives as local copies.
        """
        self._n = check_positive("n", n)
        out: list[tuple[int, ...]] = []
        incoming: list[list[int]] = [[] for _ in range(n)]
        n_edges = 0
        for u in range(n):
            if isinstance(out_neighbors, Mapping):
                raw = out_neighbors.get(u, ())
            else:
                raw = out_neighbors[u] if u < len(out_neighbors) else ()
            nbrs = sorted(set(int(v) for v in raw))
            if nbrs and (nbrs[0] < 0 or nbrs[-1] >= n):
                bad = [v for v in nbrs if not 0 <= v < n]
                raise ValueError(f"rank {u} has out-of-range neighbors {bad} (n={n})")
            out.append(tuple(nbrs))
            n_edges += len(nbrs)
            for v in nbrs:
                incoming[v].append(u)
        self._out = tuple(out)
        self._in = tuple(tuple(sorted(lst)) for lst in incoming)
        self._n_edges = n_edges

    # ----------------------------------------------------------------- basics
    @property
    def n(self) -> int:
        """Number of ranks."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Total directed edges (= total messages of the naive algorithm)."""
        return self._n_edges

    def out_neighbors(self, rank: int) -> tuple[int, ...]:
        """Sorted outgoing neighbors of ``rank`` (set ``O`` in the paper)."""
        return self._out[rank]

    def in_neighbors(self, rank: int) -> tuple[int, ...]:
        """Sorted incoming neighbors of ``rank`` (set ``I`` in the paper)."""
        return self._in[rank]

    def outdegree(self, rank: int) -> int:
        return len(self._out[rank])

    def indegree(self, rank: int) -> int:
        return len(self._in[rank])

    def has_edge(self, u: int, v: int) -> bool:
        out = self._out[u]
        import bisect
        i = bisect.bisect_left(out, v)
        return i < len(out) and out[i] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all directed edges ``(u, v)``."""
        for u, nbrs in enumerate(self._out):
            for v in nbrs:
                yield (u, v)

    @property
    def density(self) -> float:
        """Edge density relative to a complete digraph with self-loops.

        Matches the paper's Erdős–Rényi parameter: average outdegree
        equals ``density * n``.
        """
        return self._n_edges / (self._n * self._n)

    @property
    def average_outdegree(self) -> float:
        return self._n_edges / self._n

    @property
    def max_outdegree(self) -> int:
        return max((len(nbrs) for nbrs in self._out), default=0)

    @property
    def max_indegree(self) -> int:
        return max((len(nbrs) for nbrs in self._in), default=0)

    def has_self_loops(self) -> bool:
        return any(u in nbrs for u, nbrs in enumerate(self._out))

    # ------------------------------------------------------------ conversions
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "DistGraphTopology":
        out: dict[int, list[int]] = {}
        for u, v in edges:
            out.setdefault(u, []).append(v)
        return cls(n, out)

    def reversed(self) -> "DistGraphTopology":
        """Topology with every edge direction flipped."""
        return DistGraphTopology(self._n, {v: list(self._in[v]) for v in range(self._n)})

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (for analysis/plotting)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, graph) -> "DistGraphTopology":
        n = graph.number_of_nodes()
        return cls.from_edges(n, graph.edges())

    # ------------------------------------------------------------------ misc
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistGraphTopology):
            return NotImplemented
        return self._n == other._n and self._out == other._out

    def __hash__(self) -> int:
        return hash((self._n, self._out))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistGraphTopology(n={self._n}, edges={self._n_edges}, "
            f"density={self.density:.4f})"
        )
