"""Topology diagnostics: the structural quantities that predict algorithm
benefit.

The paper's algorithms exploit two properties of a virtual topology:

* **shared outgoing neighborhoods** — the currency of both the Common
  Neighbor grouping and the Distance Halving agent scores (Matrix A row
  sums);
* **placement locality** — how many edges stay within a socket / node /
  group once ranks are placed on a machine, which bounds what halving can
  save.

:func:`analyze_topology` computes both (plus degree statistics), and
:func:`pattern_preview` builds the actual Distance Halving pattern to report
its levels, agent success rate, and data messages per call next to the
naive per-edge count.  The CLI exposes this as ``python -m repro analyze``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.topology.graph import DistGraphTopology


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    mean: float
    std: float
    minimum: int
    maximum: int

    @classmethod
    def of(cls, degrees: list[int]) -> "DegreeStats":
        arr = np.asarray(degrees, dtype=float)
        if arr.size == 0:
            return cls(0.0, 0.0, 0, 0)
        return cls(float(arr.mean()), float(arr.std()), int(arr.min()), int(arr.max()))


@dataclass
class TopologyReport:
    """Structural summary of one topology (optionally placed on a machine)."""

    n: int
    n_edges: int
    density: float
    out_degrees: DegreeStats
    in_degrees: DegreeStats
    self_loops: int
    symmetric: bool
    #: mean |O_u ∩ O_v| over ordered rank pairs u != v (the Matrix A currency)
    mean_shared_out_neighbors: float
    #: fraction of rank pairs sharing at least one outgoing neighbor
    candidate_pair_fraction: float
    #: edge fraction per link class; empty when no machine was given
    edge_locality: dict[str, float] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        lines = [
            f"ranks={self.n}  edges={self.n_edges}  density={self.density:.4f}  "
            f"self-loops={self.self_loops}  symmetric={self.symmetric}",
            f"outdegree: mean={self.out_degrees.mean:.1f} std={self.out_degrees.std:.1f} "
            f"range=[{self.out_degrees.minimum}, {self.out_degrees.maximum}]",
            f"shared out-neighbors: mean={self.mean_shared_out_neighbors:.2f} per pair, "
            f"{self.candidate_pair_fraction:.0%} of pairs are agent candidates",
        ]
        if self.edge_locality:
            parts = ", ".join(f"{k}={v:.0%}" for k, v in self.edge_locality.items() if v)
            lines.append(f"edge locality: {parts}")
        return lines


def analyze_topology(
    topology: DistGraphTopology, machine: Machine | None = None
) -> TopologyReport:
    """Compute a :class:`TopologyReport` (O(n^2 * degree) worst case)."""
    n = topology.n
    out_deg = [topology.outdegree(r) for r in range(n)]
    in_deg = [topology.indegree(r) for r in range(n)]
    self_loops = sum(1 for u in range(n) if u in topology.out_neighbors(u))
    symmetric = all(
        topology.out_neighbors(u) == topology.in_neighbors(u) for u in range(n)
    )

    # Shared-out-neighbor statistics via one boolean matmul.
    from repro.collectives.distance_halving.matrix_a import adjacency_matrix

    adj = adjacency_matrix(topology).astype(np.float32)
    shared = adj @ adj.T
    np.fill_diagonal(shared, 0.0)
    pairs = n * (n - 1)
    mean_shared = float(shared.sum() / pairs) if pairs else 0.0
    candidate_fraction = float((shared > 0).sum() / pairs) if pairs else 0.0

    locality: dict[str, float] = {}
    if machine is not None:
        if n > machine.spec.n_ranks:
            raise ValueError(
                f"topology has {n} ranks, machine only {machine.spec.n_ranks}"
            )
        counts: Counter[LinkClass] = Counter()
        for u, v in topology.edges():
            counts[machine.link_class(u, v)] += 1
        total = max(1, topology.n_edges)
        locality = {cls.name: counts.get(cls, 0) / total for cls in LinkClass}

    return TopologyReport(
        n=n,
        n_edges=topology.n_edges,
        density=topology.density,
        out_degrees=DegreeStats.of(out_deg),
        in_degrees=DegreeStats.of(in_deg),
        self_loops=self_loops,
        symmetric=symmetric,
        mean_shared_out_neighbors=mean_shared,
        candidate_pair_fraction=candidate_fraction,
        edge_locality=locality,
    )


def pattern_preview(topology: DistGraphTopology, machine: Machine) -> dict:
    """Build the DH pattern and summarize what the collective would do.

    Returns a dict with halving levels, agent success rate, data messages
    per call (vs the naive per-edge count), and the peak buffer growth.
    """
    from repro.collectives.distance_halving.builder import build_patterns

    pattern = build_patterns(topology, machine)
    peak_blocks = max((rp.max_buffer_blocks() for rp in pattern.ranks), default=1)
    return {
        "levels": pattern.stats.levels,
        "agent_success_rate": pattern.stats.success_rate,
        "dh_messages_per_call": pattern.total_data_messages(),
        "naive_messages_per_call": topology.n_edges,
        "message_reduction": (
            topology.n_edges / pattern.total_data_messages()
            if pattern.total_data_messages()
            else float("inf")
        ),
        "peak_buffer_blocks": peak_blocks,
    }
