"""Scale-free (imbalanced) topologies.

Erdős–Rényi graphs are degree-uniform; many real HPC communication patterns
(graph analytics, adaptive meshes) are heavily skewed, with hub processes
talking to large fractions of the communicator.  The paper's load-aware
agent selection is motivated exactly by such "imbalanced communication
patterns" — these generators supply them for the ablation study.

Two flavours:

* :func:`scale_free_topology` — directed preferential attachment
  (Barabási–Albert style): early ranks become hubs with high in/out degree.
* :func:`hub_spoke_topology` — an explicit worst case: ``hubs`` ranks talk
  to everyone, the rest only to the hubs.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import DistGraphTopology
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_positive


def scale_free_topology(
    n: int,
    edges_per_rank: int = 4,
    seed: RandomState = None,
    symmetric: bool = True,
) -> DistGraphTopology:
    """Preferential-attachment topology: skewed degrees, early-rank hubs.

    Each rank ``u >= 1`` draws ``min(u, edges_per_rank)`` distinct targets
    among ranks ``< u`` with probability proportional to their current
    degree (plus one).  With ``symmetric=True`` (default) edges go both
    ways, like a halo exchange over a scale-free mesh; otherwise only
    ``u -> target``.
    """
    n = check_positive("n", n)
    edges_per_rank = check_positive("edges_per_rank", edges_per_rank)
    rng = resolve_rng(seed)

    degree = np.ones(n)
    out: dict[int, set[int]] = {u: set() for u in range(n)}
    for u in range(1, n):
        k = min(u, edges_per_rank)
        weights = degree[:u] / degree[:u].sum()
        targets = rng.choice(u, size=k, replace=False, p=weights)
        for v in targets:
            v = int(v)
            out[u].add(v)
            degree[v] += 1
            degree[u] += 1
            if symmetric:
                out[v].add(u)
    return DistGraphTopology(n, {u: sorted(s) for u, s in out.items()})


def hub_spoke_topology(n: int, hubs: int = 2) -> DistGraphTopology:
    """Extreme imbalance: ``hubs`` ranks exchange with everyone.

    Every hub has out/in degree ``n - 1``; every spoke talks only to the
    hubs.  The naive algorithm serializes ``n - 1`` messages at each hub;
    offloading is the only way out — the load-aware selection's home turf.
    """
    n = check_positive("n", n)
    hubs = check_positive("hubs", hubs)
    if hubs >= n:
        raise ValueError(f"hubs={hubs} must be < n={n}")
    out: dict[int, list[int]] = {}
    hub_set = set(range(hubs))
    for u in range(n):
        if u in hub_set:
            out[u] = [v for v in range(n) if v != u]
        else:
            out[u] = sorted(hub_set)
    return DistGraphTopology(n, out)
