"""Topology induced by a sparse matrix's structure (paper Section VII-C).

For the SpMM kernel ``Z = X @ Y`` with ``X`` block-striped row-wise over the
ranks, rank ``i`` needs the rows of ``Y`` indexed by the nonzero *columns*
of its stripe of ``X``.  The owner of each such row becomes an incoming
neighbor of ``i`` (edge ``owner -> i``), and ``MPI_Neighbor_allgather`` over
this topology delivers exactly the needed blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.topology.graph import DistGraphTopology
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BlockRowPartition:
    """Contiguous block-row partition of ``n_rows`` over ``n_ranks``.

    Rows split as evenly as possible; the first ``n_rows % n_ranks`` ranks
    get one extra row.
    """

    n_rows: int
    n_ranks: int

    def __post_init__(self) -> None:
        check_positive("n_rows", self.n_rows)
        check_positive("n_ranks", self.n_ranks)
        if self.n_ranks > self.n_rows:
            raise ValueError(
                f"n_ranks={self.n_ranks} exceeds n_rows={self.n_rows}; "
                "every rank must own at least one row"
            )

    def bounds(self, rank: int) -> tuple[int, int]:
        """Half-open row range ``[lo, hi)`` owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        base, extra = divmod(self.n_rows, self.n_ranks)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    def owner(self, row: int) -> int:
        """Rank owning ``row``."""
        if not 0 <= row < self.n_rows:
            raise ValueError(f"row {row} out of range [0, {self.n_rows})")
        base, extra = divmod(self.n_rows, self.n_ranks)
        threshold = extra * (base + 1)
        if row < threshold:
            return row // (base + 1)
        return extra + (row - threshold) // base

    def owners(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        rows = np.asarray(rows)
        base, extra = divmod(self.n_rows, self.n_ranks)
        threshold = extra * (base + 1)
        low = rows // (base + 1)
        high = extra + (rows - threshold) // max(base, 1)
        return np.where(rows < threshold, low, high).astype(np.int64)

    def size_of(self, rank: int) -> int:
        lo, hi = self.bounds(rank)
        return hi - lo


def topology_from_sparse(
    matrix: sp.spmatrix | sp.sparray,
    n_ranks: int,
) -> tuple[DistGraphTopology, BlockRowPartition]:
    """Neighborhood topology for block-row SpMM over ``matrix``.

    Returns ``(topology, partition)`` where ``topology`` has an edge
    ``u -> v`` whenever rank ``v``'s stripe of the matrix has a nonzero in a
    column owned by rank ``u`` (``u != v``); i.e., ``u`` must send its
    ``Y``-block to ``v``.
    """
    matrix = sp.csr_matrix(matrix)
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError(f"matrix must be square for SpMM topology, got {matrix.shape}")
    partition = BlockRowPartition(n_rows, check_positive("n_ranks", n_ranks))

    out_lists: dict[int, set[int]] = {u: set() for u in range(n_ranks)}
    for v in range(n_ranks):
        lo, hi = partition.bounds(v)
        stripe = matrix[lo:hi]
        needed_cols = np.unique(stripe.indices)
        for u in np.unique(partition.owners(needed_cols)):
            if int(u) != v:
                out_lists[int(u)].add(v)
    return DistGraphTopology(n_ranks, {u: sorted(s) for u, s in out_lists.items()}), partition
