"""Erdős–Rényi random sparse graph topologies (paper Section VII-A).

Each directed edge ``u -> v`` (``u != v``) exists independently with
probability ``density`` — the paper's δ parameter, "the same parameter δ in
the Erdős–Rényi random graph generation model".  Generation is vectorized:
one Bernoulli matrix per graph, so 2000-rank graphs build in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import DistGraphTopology
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_positive, check_probability


def erdos_renyi_topology(
    n: int,
    density: float,
    seed: RandomState = None,
    allow_self_loops: bool = False,
) -> DistGraphTopology:
    """Random directed graph over ``n`` ranks with edge probability ``density``.

    Parameters
    ----------
    n:
        Number of ranks.
    density:
        δ ∈ [0, 1]; expected outdegree is ``density * (n - 1)``
        (``density * n`` with self-loops).
    seed:
        RNG seed / generator for reproducibility.
    allow_self_loops:
        MPI permits ``u -> u`` edges; the paper's benchmarks exclude them.
    """
    n = check_positive("n", n)
    density = check_probability("density", density)
    rng = resolve_rng(seed)

    if density == 0.0:
        return DistGraphTopology(n, [() for _ in range(n)])

    adjacency = rng.random((n, n)) < density
    if not allow_self_loops:
        np.fill_diagonal(adjacency, False)
    out_lists = [np.flatnonzero(adjacency[u]).tolist() for u in range(n)]
    return DistGraphTopology(n, out_lists)
