"""The naive (default Open MPI) neighborhood allgather.

One point-to-point message per topology edge, posted non-blocking and
completed with a single waitall — exactly how mainstream MPI libraries
implement ``MPI_Neighbor_allgather`` today, "regardless of the virtual
topology, network topology and the underlying hardware" (paper Section I).
There is no setup cost: the virtual topology itself is the plan.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.machine import Machine
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology

#: Tag used by all naive data messages.
NAIVE_TAG = 0


@register_algorithm
class NaiveAllgather(NeighborhoodAllgatherAlgorithm):
    """Direct isend/irecv to every outgoing/incoming neighbor."""

    name = "naive"

    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        return SetupStats()  # nothing to build

    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        rank = comm.rank
        topo = ctx.topology
        out_nbrs = topo.out_neighbors(rank)
        in_nbrs = topo.in_neighbors(rank)
        if not out_nbrs and not in_nbrs:
            return None
        return self._run(comm, ctx, out_nbrs, in_nbrs)

    def _run(self, comm: SimCommunicator, ctx: ExecutionContext, out_nbrs, in_nbrs) -> Generator:
        rank = comm.rank
        results = ctx.results[rank]
        m = ctx.size_of(rank)
        payload = ctx.payloads[rank]

        recv_reqs = [comm.irecv(src, tag=NAIVE_TAG) for src in in_nbrs if src != rank]
        send_reqs = [
            comm.isend(dst, m, tag=NAIVE_TAG, payload=payload) for dst in out_nbrs if dst != rank
        ]
        if rank in out_nbrs:  # MPI self-edge: local copy into own recvbuf
            comm.charge_memcpy(m)
            results[rank] = payload
        if recv_reqs or send_reqs:
            yield comm.waitall(recv_reqs + send_reqs)
        for req in recv_reqs:
            results[req.source] = req.payload
