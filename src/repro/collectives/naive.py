"""The naive (default Open MPI) neighborhood allgather.

One point-to-point message per topology edge, posted non-blocking and
completed with a single waitall — exactly how mainstream MPI libraries
implement ``MPI_Neighbor_allgather`` today, "regardless of the virtual
topology, network topology and the underlying hardware" (paper Section I).
There is no setup cost: the virtual topology itself is the plan.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.machine import Machine
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology

#: Tag used by all naive data messages.
NAIVE_TAG = 0


@register_algorithm(
    capabilities=("schedule", "replan", "setup_free", "oracle", "bench"),
    label="naive",
)
class NaiveAllgather(NeighborhoodAllgatherAlgorithm):
    """Direct isend/irecv to every outgoing/incoming neighbor."""

    name = "naive"

    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        return SetupStats()  # nothing to build

    def replan(self, survivors, delivered_state):
        """Setup-free: a fresh instance is a complete replan."""
        return NaiveAllgather()

    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        rank = comm.rank
        topo = ctx.topology
        out_nbrs = topo.out_neighbors(rank)
        in_nbrs = topo.in_neighbors(rank)
        if not out_nbrs and not in_nbrs:
            return None
        return self._run(comm, ctx, out_nbrs, in_nbrs)

    def build_schedule(self, ctx: ExecutionContext):
        """Static schedule mirroring :meth:`_run` op for op."""
        from repro.sim.schedule import Schedule

        topo = ctx.topology
        n = topo.n
        all_ops: list[list[tuple] | None] = []
        deliveries: list[list[int]] = []
        for rank in range(n):
            out_nbrs = topo.out_neighbors(rank)
            in_nbrs = topo.in_neighbors(rank)
            if not out_nbrs and not in_nbrs:
                all_ops.append(None)
                deliveries.append([])
                continue
            m = ctx.size_of(rank)
            ops: list[tuple] = [
                ("recv", src, NAIVE_TAG) for src in in_nbrs if src != rank
            ]
            dels: list[int] = [src for src in in_nbrs if src != rank]
            n_reqs = len(ops)
            for dst in out_nbrs:
                if dst != rank:
                    ops.append(("send", dst, m, NAIVE_TAG))
                    n_reqs += 1
            if rank in out_nbrs:  # MPI self-edge: local copy into own recvbuf
                ops.append(("charge", m))
                dels.append(rank)
            if n_reqs:
                ops.append(("wait",))
            all_ops.append(ops)
            deliveries.append(dels)
        return Schedule(n, all_ops, deliveries)

    def _run(self, comm: SimCommunicator, ctx: ExecutionContext, out_nbrs, in_nbrs) -> Generator:
        rank = comm.rank
        results = ctx.results[rank]
        m = ctx.size_of(rank)
        payload = ctx.payloads[rank]

        recv_reqs = [comm.irecv(src, tag=NAIVE_TAG) for src in in_nbrs if src != rank]
        send_reqs = [
            comm.isend(dst, m, tag=NAIVE_TAG, payload=payload) for dst in out_nbrs if dst != rank
        ]
        if rank in out_nbrs:  # MPI self-edge: local copy into own recvbuf
            comm.charge_memcpy(m)
            results[rank] = payload
        if recv_reqs or send_reqs:
            yield comm.waitall(recv_reqs + send_reqs)
        for req in recv_reqs:
            results[req.source] = req.payload
