"""Neighborhood-allgather algorithms and their execution harness.

The algorithm zoo, in registration order:

* :class:`NaiveAllgather` — direct point-to-point to every neighbor
  (default Open MPI / MPICH behaviour).
* :class:`CommonNeighborAllgather` — message combining over groups of K
  ranks with common outgoing neighbors (Ghazimirsaeed et al., IPDPS'19).
* :class:`DistanceHalvingAllgather` — the paper's topology- and load-aware
  distance-halving design.
* :class:`HierarchicalAllgather` — leader-based aggregate/exchange/
  redistribute baseline (lookup-only: registered without bench/oracle
  capabilities).
* :class:`LocalityAwareBruckAllgather` — rotation-indexed log-round Bruck
  between socket/node leaders (Bienz et al., arXiv:2206.03564).

Every backend registers through the capability-aware registry in
:mod:`repro.collectives.base`: benches, the differential fuzzer, and the
CLI query :func:`list_algorithms` for the capabilities they need
(``oracle``, ``bench``, ``schedule``, ...) instead of hardcoding names, so
registering a backend enrolls it everywhere at once.  All oracle-capable
algorithms run as rank programs on the discrete-event simulator through
:func:`run_allgather` and produce byte-identical receive buffers
(property-tested), differing only in messaging schedule and cost.
"""

from repro.collectives.base import (
    CAPABILITIES,
    SETUP_FREE_FALLBACK,
    AlgorithmInfo,
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    algorithm_info,
    available_algorithms,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.collectives.naive import NaiveAllgather
from repro.collectives.common_neighbor import CommonNeighborAllgather
from repro.collectives.distance_halving import DistanceHalvingAllgather
from repro.collectives.hierarchical import HierarchicalAllgather
from repro.collectives.bruck import LocalityAwareBruckAllgather
from repro.collectives.runner import (
    DEFAULT_OPTIONS,
    AllgatherRun,
    RunOptions,
    VerificationError,
    run_allgather,
    run_allgatherv,
    verify_allgather,
)

__all__ = [
    "NeighborhoodAllgatherAlgorithm",
    "ExecutionContext",
    "SetupStats",
    "AlgorithmInfo",
    "CAPABILITIES",
    "SETUP_FREE_FALLBACK",
    "register_algorithm",
    "get_algorithm",
    "algorithm_info",
    "list_algorithms",
    "available_algorithms",
    "NaiveAllgather",
    "CommonNeighborAllgather",
    "DistanceHalvingAllgather",
    "HierarchicalAllgather",
    "LocalityAwareBruckAllgather",
    "AllgatherRun",
    "RunOptions",
    "VerificationError",
    "DEFAULT_OPTIONS",
    "run_allgather",
    "run_allgatherv",
    "verify_allgather",
]
