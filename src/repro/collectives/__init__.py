"""Neighborhood-allgather algorithms and their execution harness.

Three algorithms, as in the paper's evaluation:

* :class:`NaiveAllgather` — direct point-to-point to every neighbor
  (default Open MPI / MPICH behaviour).
* :class:`CommonNeighborAllgather` — message combining over groups of K
  ranks with common outgoing neighbors (Ghazimirsaeed et al., IPDPS'19).
* :class:`DistanceHalvingAllgather` — the paper's topology- and load-aware
  distance-halving design.

All three run as rank programs on the discrete-event simulator through
:func:`run_allgather` and produce byte-identical receive buffers
(property-tested), differing only in messaging schedule and cost.
"""

from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.collectives.naive import NaiveAllgather
from repro.collectives.common_neighbor import CommonNeighborAllgather
from repro.collectives.distance_halving import DistanceHalvingAllgather
from repro.collectives.hierarchical import HierarchicalAllgather
from repro.collectives.runner import (
    DEFAULT_OPTIONS,
    AllgatherRun,
    RunOptions,
    VerificationError,
    run_allgather,
    run_allgatherv,
    verify_allgather,
)

__all__ = [
    "NeighborhoodAllgatherAlgorithm",
    "ExecutionContext",
    "SetupStats",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "NaiveAllgather",
    "CommonNeighborAllgather",
    "DistanceHalvingAllgather",
    "HierarchicalAllgather",
    "AllgatherRun",
    "RunOptions",
    "VerificationError",
    "DEFAULT_OPTIONS",
    "run_allgather",
    "run_allgatherv",
    "verify_allgather",
]
