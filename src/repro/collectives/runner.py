"""Execution harness: run one neighborhood allgather on the simulator.

This is the reproduction's equivalent of an OSU-style micro-benchmark
iteration: spawn every rank's program, run the event loop, return the
simulated collective latency (makespan over ranks) plus traces and the
received blocks for verification.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.machine import Machine
from repro.collectives.base import (
    SETUP_FREE_FALLBACK,
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    algorithm_info,
    get_algorithm,
)
from repro.sim.engine import Engine, RankFailedError
from repro.sim.fastpath import execute_schedule
from repro.sim.schedule import contention_free
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.tracing import TraceCollector
from repro.topology.graph import DistGraphTopology
from repro.utils.sizes import parse_size


class VerificationError(AssertionError):
    """The MPI allgather post-condition failed, with structured detail.

    Subclasses :class:`AssertionError` so legacy ``pytest.raises`` /
    ``except AssertionError`` call sites keep working, but carries the
    violation as data so the :mod:`repro.verify` fuzzer (and any other
    machine consumer) can classify, minimize, and report failures without
    parsing message strings.

    Attributes
    ----------
    algorithm:
        Name of the algorithm whose run failed verification.
    rank:
        The receiving rank whose buffer is wrong.
    missing, extra:
        For neighbor-set violations: sorted source ranks whose block never
        arrived / arrived without a topology edge (empty tuples otherwise).
    neighbor, got, expected:
        For payload violations: the source rank whose block carries the
        wrong object, the received payload, and the expected payload
        (``None`` for neighbor-set violations).
    """

    def __init__(
        self,
        message: str,
        *,
        algorithm: str,
        rank: int,
        missing: tuple[int, ...] = (),
        extra: tuple[int, ...] = (),
        neighbor: int | None = None,
        got: Any = None,
        expected: Any = None,
    ) -> None:
        super().__init__(message)
        self.algorithm = algorithm
        self.rank = rank
        self.missing = tuple(missing)
        self.extra = tuple(extra)
        self.neighbor = neighbor
        self.got = got
        self.expected = expected

    @property
    def kind(self) -> str:
        """``"neighbor_set"`` or ``"payload"`` — which post-condition broke."""
        return "payload" if self.neighbor is not None else "neighbor_set"

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe summary (embedded in fuzzer repro files)."""
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "rank": self.rank,
            "missing": list(self.missing),
            "extra": list(self.extra),
            "neighbor": self.neighbor,
            "got": repr(self.got) if self.got is not None else None,
            "expected": repr(self.expected) if self.expected is not None else None,
            "message": str(self),
        }


@dataclass(frozen=True)
class RunOptions:
    """Execution options for one simulated collective.

    This is the single carrier for everything that used to sprawl across
    :func:`run_allgather`'s keyword surface (``trace``, ``noise_seed``,
    ``fault_plan``, ``fallback``, ``max_sim_time``, ``max_events``); it is
    also embedded verbatim in :class:`repro.exec.RunSpec`, so one object
    describes a run identically for direct calls, the sweep orchestrator,
    and the result cache.

    Attributes
    ----------
    trace:
        Collect a per-message :class:`~repro.sim.tracing.TraceCollector`
        (and resource utilization) on the run.
    noise_seed:
        Seed for machine-level noise (only meaningful on machines with
        ``jitter > 0``).
    fault_plan:
        A seeded :class:`~repro.sim.faults.FaultPlan` injecting link
        degradation, stragglers, and message loss.
    fallback:
        Graceful degradation: registered algorithm to swap in when the
        requested algorithm's setup cannot complete under ``fault_plan``.
    max_sim_time, max_events:
        Engine watchdog budgets; exceeding either raises
        :class:`~repro.sim.engine.SimTimeoutError`.
    verify:
        Assert the MPI post-condition (:func:`verify_allgather`) before
        returning — used by orchestrated sweeps, where the caller never
        sees the full (non-slim) result buffers.
    sim_mode:
        Execution path selection.  ``"des"`` (default) always runs the
        discrete-event engine.  ``"auto"`` replays the algorithm's static
        schedule through :mod:`repro.sim.fastpath` — bit-identical results,
        typically an order of magnitude faster — whenever the run is
        eligible (no fault plan, no tracing, jitter-free machine, and the
        algorithm provides a schedule), falling back to the engine
        otherwise.  ``"analytic"`` prices every message with the
        closed-form Hockney pipeline cost, ignoring contention: exact on
        contention-free schedules, a documented lower bound elsewhere (see
        docs/ARCHITECTURE.md); runs with a fault plan likewise fall back
        to the engine.
    on_failure:
        ULFM-style policy for fail-stop failures (``RankCrash`` faults that
        leave survivors stalled).  ``"abort"`` (default) propagates the
        engine's :class:`~repro.sim.engine.RankFailedError` — the
        ``MPI_ERRORS_ABORT`` analogue.  ``"shrink"`` rebuilds the
        communicator over the survivors and re-plans the remaining stages
        with the same algorithm (already-delivered blocks are not resent);
        ``"degrade"`` rebuilds over survivors but falls back to the
        setup-free naive algorithm for the recovery round(s).  Both
        recovery modes report crashed ranks in
        :attr:`AllgatherRun.missing_ranks` and charge detection + replan
        cost in simulated time.
    """

    trace: bool = False
    noise_seed: int = 0
    fault_plan: FaultPlan | None = None
    fallback: str | None = None
    max_sim_time: float | None = None
    max_events: int | None = None
    verify: bool = False
    sim_mode: str = "des"
    on_failure: str = "abort"

    def __post_init__(self) -> None:
        if self.sim_mode not in ("des", "auto", "analytic"):
            raise ValueError(
                f"sim_mode must be 'des', 'auto' or 'analytic', got {self.sim_mode!r}"
            )
        if self.on_failure not in ("abort", "shrink", "degrade"):
            raise ValueError(
                f"on_failure must be 'abort', 'shrink' or 'degrade', "
                f"got {self.on_failure!r}"
            )
        if self.fallback is not None:
            try:
                algorithm_info(self.fallback)
            except KeyError as exc:
                raise ValueError(f"fallback: {exc.args[0]}") from None

    def canonical(self) -> dict:
        """JSON-safe dict with a stable field order (for spec digests).

        ``sim_mode`` is emitted only when non-default, so every digest
        computed before the field existed stays valid (same pattern as
        ``TopologySpec.self_loops``); any non-``"des"`` mode changes the
        digest, keeping the content-addressed cache sound across paths.
        """
        data = {
            "trace": self.trace,
            "noise_seed": self.noise_seed,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
            "fallback": self.fallback,
            "max_sim_time": self.max_sim_time,
            "max_events": self.max_events,
            "verify": self.verify,
        }
        if self.sim_mode != "des":
            data["sim_mode"] = self.sim_mode
        # Same stability pattern: "abort" (the pre-recovery behavior) is
        # omitted so pre-existing digests stay valid.
        if self.on_failure != "abort":
            data["on_failure"] = self.on_failure
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunOptions":
        """Inverse of :meth:`canonical` (used by fuzzer repro files)."""
        plan = data.get("fault_plan")
        return cls(
            trace=data.get("trace", False),
            noise_seed=data.get("noise_seed", 0),
            fault_plan=FaultPlan.from_dict(plan) if plan is not None else None,
            fallback=data.get("fallback"),
            max_sim_time=data.get("max_sim_time"),
            max_events=data.get("max_events"),
            verify=data.get("verify", False),
            sim_mode=data.get("sim_mode", "des"),
            on_failure=data.get("on_failure", "abort"),
        )


#: Shared default options (all fields at their defaults).
DEFAULT_OPTIONS = RunOptions()


@dataclass
class AllgatherRun:
    """Outcome of one simulated ``MPI_Neighbor_allgather(v)``."""

    algorithm: str
    msg_size: int
    simulated_time: float
    finish_times: dict[int, float]
    messages_sent: int
    bytes_sent: int
    setup_stats: SetupStats
    results: list[dict[int, Any]] = field(repr=False, default_factory=list)
    trace: TraceCollector | None = field(repr=False, default=None)
    wall_time: float = 0.0
    block_sizes: list[int] | None = field(repr=False, default=None)
    #: busy fractions per resource family over the run (trace=True only)
    utilization: dict | None = field(repr=False, default=None)
    #: fault-injection counters {drops, retransmissions, messages_lost}
    #: (fault_plan runs only)
    fault_stats: dict[str, int] | None = None
    #: algorithm originally requested when graceful degradation swapped it
    requested_algorithm: str | None = None
    #: per-link-class conservation aggregates (TraceCollector.summary();
    #: trace=True runs only).  Plain JSON data, so — unlike ``trace`` — it
    #: survives slim(), worker transfer, and cache round-trips, keeping the
    #: repro.verify conservation checks runnable on cached results.
    trace_summary: dict[str, dict[str, int]] | None = None
    #: which execution path produced this run: "des" (discrete-event
    #: engine), "fastpath" (bit-identical schedule replay), or "analytic"
    #: (closed-form Hockney costing).  Lets tests and sweeps distinguish a
    #: genuine fast-path run from an auto-mode fallback to the engine.
    sim_path: str = "des"
    #: ranks whose payloads are missing from the collective because they
    #: crashed (fail-stop faults), ascending original ids; empty for
    #: crash-free runs.  Survivors' buffers verify under
    #: ``verify_allgather(allow_missing=run.missing_ranks)``.
    missing_ranks: tuple[int, ...] = ()
    #: ULFM-style recovery summary when on_failure rebuilt the communicator:
    #: {"mode", "rounds", "replan_messages", "time_to_recover"}; None for
    #: runs that never recovered (including clean ones).
    recovery: dict[str, Any] | None = None
    #: the algorithm ``algorithm="auto"`` resolved to (the adaptive
    #: selector's pick, see :mod:`repro.select`); None for runs that named
    #: their algorithm directly.
    selected_algorithm: str | None = None

    @property
    def fallback_used(self) -> bool:
        """True when the requested algorithm's setup could not complete
        under the fault plan and the run degraded to ``fallback``."""
        return self.requested_algorithm is not None

    def slim(self) -> "AllgatherRun":
        """A copy without the per-rank result buffers and the trace.

        ``results`` holds one dict per rank of arbitrary payload objects and
        ``trace`` a :class:`~repro.sim.tracing.TraceCollector` closed over
        live simulator state — together they make a run unpicklable (or
        enormous) for cross-process transfer and content-addressed caching.
        Everything else (timings, counters, setup stats, fault stats, and
        the ``trace_summary`` aggregates) is preserved bit-for-bit.
        """
        return dataclasses.replace(self, results=[], trace=None)


def run_allgather(
    algorithm: str | NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    msg_size: int | str | list[int | str] | tuple,
    *,
    options: RunOptions | None = None,
    payloads: list[Any] | None = None,
    **unexpected_kwargs,
) -> AllgatherRun:
    """Simulate one neighborhood allgather and return its latency and data.

    Parameters
    ----------
    algorithm:
        A registered algorithm name (see
        :func:`~repro.collectives.base.available_algorithms`) or a
        (possibly pre-setup) instance.  Passing an instance across calls
        reuses its communication pattern — message size sweeps only pay
        setup once, as a real MPI application would.  Algorithm
        constructor arguments go through
        :func:`~repro.collectives.base.get_algorithm` (or a
        :class:`repro.exec.RunSpec`), not through this function.
    topology, machine, msg_size:
        The virtual topology, the machine model, and the block size ``m``
        in bytes (int or string like ``"64KB"``).  Passing a list/tuple of
        ``topology.n`` sizes selects allgatherv semantics (per-source
        block sizes); see :func:`run_allgatherv`.
    options:
        A :class:`RunOptions` carrying tracing, noise, fault-injection,
        graceful-degradation, watchdog, and verification settings; defaults
        to :data:`DEFAULT_OPTIONS`.
    payloads:
        Optional per-rank payload objects; defaults to the rank id, which
        makes delivered-block identity checkable by :func:`verify_allgather`.

    Any other keyword is rejected: the pre-``RunOptions`` bare keywords
    (removed after their deprecation cycle) and algorithm constructor
    arguments both raise ``ValueError`` pointing at the supported spelling.
    """
    if unexpected_kwargs:
        raise ValueError(
            f"run_allgather got unexpected keyword(s) {sorted(unexpected_kwargs)}: "
            "pass execution options as options=RunOptions(...) and build "
            "algorithm instances with get_algorithm(name, **kwargs) "
            "(or use repro.exec.RunSpec)"
        )
    opts = options if options is not None else DEFAULT_OPTIONS
    if isinstance(algorithm, str) and algorithm == "auto":
        # Adaptive selection: resolve against the active decision table
        # (deferred import — repro.select depends on this module).  The
        # selection's instance is already set up when a fault plan forced
        # a survivability walk, so the recursive call pays setup once.
        from repro.select.selector import select

        selection = select(topology, machine, msg_size, opts)
        run = run_allgather(
            selection.instance, topology, machine, msg_size,
            options=opts, payloads=payloads,
        )
        run.selected_algorithm = selection.algorithm
        return run
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)

    trace = opts.trace
    fault_plan = opts.fault_plan
    fallback = opts.fallback

    block_sizes: list[int] | None = None
    if isinstance(msg_size, (list, tuple)):
        block_sizes = [parse_size(s) for s in msg_size]
        if len(block_sizes) != topology.n:
            raise ValueError(
                f"block_sizes has {len(block_sizes)} entries for {topology.n} ranks"
            )
        msg_size = max(block_sizes, default=0)
    else:
        msg_size = parse_size(msg_size)
    setup_stats = algorithm.setup(topology, machine)

    requested_algorithm: str | None = None
    if fault_plan is not None and fallback is not None and fallback != algorithm.name:
        if not fault_plan.setup_survivable(setup_stats.protocol_messages):
            # Graceful degradation: the requested pattern's setup
            # negotiation cannot converge under the plan's loss, so swap in
            # the fallback algorithm (naive needs no control messages and
            # always survives).
            requested_algorithm = algorithm.name
            algorithm = get_algorithm(fallback)
            setup_stats = algorithm.setup(topology, machine)
            if not fault_plan.setup_survivable(setup_stats.protocol_messages):
                raise RuntimeError(
                    f"fallback algorithm {fallback!r} setup also cannot "
                    f"complete under the fault plan ({fault_plan.describe()})"
                )

    if payloads is None:
        payloads = list(range(topology.n))
    elif len(payloads) != topology.n:
        raise ValueError(f"payloads has {len(payloads)} entries for {topology.n} ranks")

    ctx = ExecutionContext(
        topology=topology,
        machine=machine,
        msg_size=msg_size,
        payloads=payloads,
        results=[{} for _ in range(topology.n)],
        block_sizes=block_sizes,
    )

    # Hybrid fast path: replay the algorithm's static schedule instead of
    # running the engine.  Eligibility is conservative — any feature the
    # replay does not model (fault injection, tracing, machine jitter, or
    # an algorithm without a schedule) falls back to the DES, so "auto"
    # never changes results and "analytic" honors the contract that faulty
    # runs always go through the full simulation.
    if (
        opts.sim_mode != "des"
        and fault_plan is None
        and not trace
        and machine.params.jitter == 0
    ):
        wall_start = time.perf_counter()
        schedule = algorithm.schedule_for(ctx)
        if schedule is not None:
            # Hybrid classification: "auto" consults the per-stage
            # contention analyzer and prices fully contention-free
            # schedules with the closed-form Hockney path (within the
            # calibrated tolerance; exact when no claim ever binds), while
            # contended schedules replay exactly.  "analytic" forces the
            # closed form regardless.
            analytic = opts.sim_mode == "analytic" or contention_free(schedule, machine)
            outcome = execute_schedule(
                schedule,
                machine,
                max_sim_time=opts.max_sim_time,
                max_events=opts.max_events,
                model_contention=not analytic,
            )
            results = ctx.results
            get_payload = payloads.__getitem__
            for dst, srcs in enumerate(schedule.deliveries):
                if srcs:
                    results[dst] = dict(zip(srcs, map(get_payload, srcs)))
            run = AllgatherRun(
                algorithm=algorithm.name,
                msg_size=msg_size,
                simulated_time=outcome.simulated_time,
                finish_times=outcome.finish_times,
                messages_sent=outcome.messages_sent,
                bytes_sent=outcome.bytes_sent,
                setup_stats=setup_stats,
                results=results,
                wall_time=time.perf_counter() - wall_start,
                block_sizes=block_sizes,
                requested_algorithm=requested_algorithm,
                sim_path="analytic" if analytic else "fastpath",
            )
            if opts.verify:
                verify_allgather(topology, run, expected_payloads=payloads)
            return run

    if fault_plan is not None and fault_plan.crashes and opts.on_failure != "abort":
        run = _run_with_recovery(
            algorithm, topology, machine, msg_size, block_sizes, payloads,
            opts, setup_stats, requested_algorithm,
        )
        if opts.verify:
            verify_allgather(topology, run, expected_payloads=payloads,
                             allow_missing=run.missing_ranks)
        return run

    collector = TraceCollector(keep_records=trace) if trace else None
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    engine = Engine(
        n_ranks=topology.n,
        machine=machine,
        trace=collector,
        noise_seed=opts.noise_seed,
        faults=injector,
        max_sim_time=opts.max_sim_time,
        max_events=opts.max_events,
    )

    wall_start = time.perf_counter()
    engine.spawn_all(algorithm.program_factory(ctx))
    simulated = engine.run()
    wall = time.perf_counter() - wall_start
    utilization = engine.fabric.utilization(simulated) if trace and simulated > 0 else None

    run = AllgatherRun(
        algorithm=algorithm.name,
        msg_size=msg_size,
        simulated_time=simulated,
        finish_times=engine.finish_times(),
        messages_sent=engine.messages_sent,
        bytes_sent=engine.bytes_sent,
        setup_stats=setup_stats,
        results=ctx.results,
        trace=collector,
        wall_time=wall,
        block_sizes=block_sizes,
        utilization=utilization,
        fault_stats=injector.stats() if injector is not None else None,
        requested_algorithm=requested_algorithm,
        trace_summary=collector.summary() if collector is not None else None,
        # A crash that never starved a survivor (the dead rank had nothing
        # left to contribute) completes without a RankFailedError even under
        # on_failure="abort"; the dead rank is still a missing participant.
        missing_ranks=tuple(sorted(engine.crashed_ranks)),
    )
    if opts.verify:
        verify_allgather(topology, run, expected_payloads=payloads,
                         allow_missing=run.missing_ranks)
    return run


def _residual_topology(
    topology: DistGraphTopology,
    new_map: list[int],
    merged: list[dict[int, Any]],
) -> DistGraphTopology:
    """The shrunk communicator's remaining work as a topology.

    ``new_map[i]`` is the original id of shrunk rank ``i``.  An edge
    ``u -> v`` of the original topology survives iff both endpoints are
    alive and ``u``'s block has not already landed in ``v``'s buffer
    (``merged``, keyed by original ids) — so a recovery round resends
    nothing that was delivered before the failure.
    """
    remap = {orig: new for new, orig in enumerate(new_map)}
    out_lists = []
    for orig_u in new_map:
        out_lists.append([
            remap[orig_v]
            for orig_v in topology.out_neighbors(orig_u)
            if orig_v in remap and orig_u not in merged[orig_v]
        ])
    return DistGraphTopology(len(new_map), out_lists)


def _run_with_recovery(
    algorithm: NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    msg_size: int,
    block_sizes: list[int] | None,
    payloads: list[Any],
    opts: RunOptions,
    setup_stats: SetupStats,
    requested_algorithm: str | None,
) -> AllgatherRun:
    """ULFM-style recovery loop for crash plans (shrink/degrade modes).

    Round 0 runs the requested algorithm over the full communicator.  On a
    :class:`~repro.sim.engine.RankFailedError` the loop charges the
    detection time, compacts the survivors into a shrunk communicator
    (rank ``survivors[i]`` becomes rank ``i`` — relabeling, as
    ``MPI_Comm_shrink`` does; the machine placement of relabeled ranks is
    an accepted model approximation), re-plans over the residual topology
    (delivered blocks are never resent), charges the replan's setup
    negotiation in simulated time, and runs again under the shrunk fault
    plan.  ``shrink`` keeps the algorithm (via its ``replan`` hook, with a
    degrade-to-naive guard if the replanned setup is not survivable);
    ``degrade`` switches to setup-free naive immediately.  One trace
    collector spans all rounds, so conservation laws hold over the whole
    recovered run.
    """
    mode = opts.on_failure
    trace = opts.trace
    collector = TraceCollector(keep_records=trace) if trace else None
    wall_start = time.perf_counter()

    plan = opts.fault_plan
    max_rounds = len(plan.crashes) + 1
    rank_map = list(range(topology.n))        # current rank -> original rank
    merged: list[dict[int, Any]] = [{} for _ in range(topology.n)]
    missing: list[int] = []
    fault_totals: dict[str, int] = {}
    current_alg = algorithm
    current_topology = topology
    offset = 0.0          # sim time consumed by failed rounds + detection + replans
    rounds = 0
    replan_messages = 0
    messages = total_bytes = 0
    round_make = 0.0
    engine = None

    while True:
        n_cur = current_topology.n
        injector = FaultInjector(plan) if plan is not None else None
        engine = Engine(
            n_ranks=n_cur,
            machine=machine,
            trace=collector,
            noise_seed=opts.noise_seed,
            faults=injector,
            max_sim_time=opts.max_sim_time,
            max_events=opts.max_events,
        )
        ctx = ExecutionContext(
            topology=current_topology,
            machine=machine,
            msg_size=msg_size,
            payloads=[payloads[orig] for orig in rank_map],
            results=[{} for _ in range(n_cur)],
            block_sizes=(None if block_sizes is None
                         else [block_sizes[orig] for orig in rank_map]),
        )
        engine.spawn_all(current_alg.program_factory(ctx))
        failure: RankFailedError | None = None
        try:
            round_make = engine.run()
        except RankFailedError as exc:
            failure = exc
        # Merge whatever landed this round (partial on failure), remapping
        # both buffer owners and block sources back to original ids.
        for r_cur in range(n_cur):
            dst = merged[rank_map[r_cur]]
            for src_cur, payload in ctx.results[r_cur].items():
                dst[rank_map[src_cur]] = payload
        messages += engine.messages_sent
        total_bytes += engine.bytes_sent
        if injector is not None:
            for key, value in injector.stats().items():
                fault_totals[key] = fault_totals.get(key, 0) + value

        if failure is None:
            missing.extend(rank_map[r] for r in engine.crashed_ranks)
            simulated = offset + round_make
            finish_times = {
                rank_map[r]: offset + t for r, t in engine.finish_times().items()
            }
            break

        rounds += 1
        missing.extend(rank_map[r] for r in failure.failed_ranks)
        if rounds >= max_rounds:
            raise failure  # unreachable: every failed round kills >= 1 rank
        offset += failure.detection_time
        survivors_cur = list(failure.survivors)
        if not survivors_cur:
            simulated = offset
            finish_times = {}
            round_make = 0.0
            break
        new_map = [rank_map[r] for r in survivors_cur]
        current_topology = _residual_topology(topology, new_map, merged)
        plan = plan.shrink(survivors_cur, failure.detection_time)
        rank_map = new_map
        if mode == "degrade":
            next_alg = get_algorithm(SETUP_FREE_FALLBACK)
        else:
            next_alg = current_alg.replan(tuple(new_map), merged)
        replan_stats = next_alg.setup(current_topology, machine)
        if plan is not None and not plan.setup_survivable(replan_stats.protocol_messages):
            # The shrunk plan's loss would starve the replanned setup
            # negotiation: degrade the recovery round to the setup-free
            # fallback.
            next_alg = get_algorithm(SETUP_FREE_FALLBACK)
            replan_stats = next_alg.setup(current_topology, machine)
        replan_messages += replan_stats.protocol_messages
        offset += replan_stats.simulated_time
        current_alg = next_alg

    missing_ranks = tuple(sorted(set(missing)))
    utilization = (
        engine.fabric.utilization(round_make)
        if trace and round_make > 0 else None
    )
    return AllgatherRun(
        algorithm=algorithm.name,
        msg_size=msg_size,
        simulated_time=simulated,
        finish_times=finish_times,
        messages_sent=messages,
        bytes_sent=total_bytes,
        setup_stats=setup_stats,
        results=merged,
        trace=collector,
        wall_time=time.perf_counter() - wall_start,
        block_sizes=block_sizes,
        utilization=utilization,
        fault_stats=fault_totals or None,
        requested_algorithm=requested_algorithm,
        trace_summary=collector.summary() if collector is not None else None,
        missing_ranks=missing_ranks,
        recovery=(
            {
                "mode": mode,
                "rounds": rounds,
                "recovered_with": current_alg.name,
                "replan_messages": replan_messages,
                "time_to_recover": offset,
            }
            if missing_ranks else None
        ),
    )


def load_imbalance(run: AllgatherRun) -> float:
    """Per-rank completion-time imbalance: ``max / mean`` of finish times.

    1.0 means perfectly balanced; the paper claims the distance-halving
    offloading "decreases the load imbalance among the ranks" relative to
    the naive algorithm, where high-degree ranks finish far later than the
    rest.
    """
    times = list(run.finish_times.values())
    if not times:
        return 1.0
    mean = sum(times) / len(times)
    if mean == 0:
        return 1.0
    return max(times) / mean


def run_allgatherv(
    algorithm: str | NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    block_sizes: list[int | str],
    *,
    options: RunOptions | None = None,
    payloads: list[Any] | None = None,
    **legacy_kwargs,
) -> AllgatherRun:
    """``MPI_Neighbor_allgatherv``: per-rank block sizes.

    Sugar over :func:`run_allgather` with a size list; every algorithm
    handles variable blocks natively (buffer arithmetic is byte-accurate).
    """
    return run_allgather(
        algorithm, topology, machine, list(block_sizes),
        options=options, payloads=payloads, **legacy_kwargs,
    )


def verify_allgather(
    topology: DistGraphTopology,
    run: AllgatherRun,
    expected_payloads: list[Any] | None = None,
    allow_missing: tuple[int, ...] | set[int] = (),
) -> None:
    """Assert the MPI post-condition: every rank received exactly the blocks
    of its incoming neighbors, each carrying the payload its source sent.

    ``expected_payloads[r]`` is what rank ``r`` was expected to contribute;
    it defaults to the rank id, matching :func:`run_allgather`'s default
    payloads.  Pass the same ``payloads`` list given to the run to verify
    non-default-payload executions.

    ``allow_missing`` relaxes the post-condition for fail-stop recovery
    (pass :attr:`AllgatherRun.missing_ranks`): a listed rank's own buffer
    is not checked at all (it died mid-collective), and its block is
    *optional* in survivors' buffers — present if it was delivered before
    the crash, absent otherwise.  Every present block, crashed source or
    not, must still ride a topology edge and carry the right payload.

    Raises :class:`VerificationError` (an :class:`AssertionError` subclass
    carrying the violating (rank, neighbor, got, expected) as data) on any
    violation.
    """
    if expected_payloads is not None and len(expected_payloads) != topology.n:
        raise ValueError(
            f"expected_payloads has {len(expected_payloads)} entries for "
            f"{topology.n} ranks"
        )
    allow = set(allow_missing)
    for v in range(topology.n):
        if v in allow:
            continue
        expected = set(topology.in_neighbors(v))
        got = set(run.results[v])
        missing = expected - got - allow
        extra = got - expected
        if missing or extra:
            raise VerificationError(
                f"[{run.algorithm}] rank {v}: missing blocks from {sorted(missing)}, "
                f"unexpected blocks from {sorted(extra)}",
                algorithm=run.algorithm,
                rank=v,
                missing=tuple(sorted(missing)),
                extra=tuple(sorted(extra)),
            )
        for src, payload in run.results[v].items():
            want = src if expected_payloads is None else expected_payloads[src]
            if payload != want:
                raise VerificationError(
                    f"[{run.algorithm}] rank {v}: block from {src} carries wrong "
                    f"payload {payload!r} (expected {want!r})",
                    algorithm=run.algorithm,
                    rank=v,
                    neighbor=src,
                    got=payload,
                    expected=want,
                )
