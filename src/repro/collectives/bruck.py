"""Locality-aware Bruck neighborhood allgather (Bienz et al., arXiv:2206.03564).

The classic Bruck allgather finishes in ``ceil(log2 P)`` rotation rounds:
in round ``r`` process ``i`` sends everything it holds so far to
``(i - 2^r) mod P`` and receives from ``(i + 2^r) mod P``.  The
locality-aware variant keeps the log-round structure but runs it between
*group leaders* only (one leader per socket, or per node with
``locality="node"``), bracketed by cheap local stages:

1. **Gather** — every *active* rank (one with a non-self outgoing
   neighbor) sends its block to its group leader.
2. **Rotation** — the leaders run the Bruck rotation over the ``S``
   groups.  Leader ``g`` at offset ``o`` sends the blocks of groups
   ``[g, g + cnt) mod S`` to leader ``(g - o) mod S`` and receives the
   blocks of groups ``[g + o, g + o + cnt) mod S``; after ``floor(log2 S)``
   doubling rounds plus one partial remainder round every leader holds
   every active block.  A rotation message whose block set is empty is
   skipped on both sides (the plan is static, so sender and receiver
   agree).
3. **Redistribute** — each leader sends every group member one combined
   message carrying exactly the blocks of that member's incoming
   neighbors; its own incoming blocks it copies locally.

The round count is topology-independent (``O(log S)`` latency terms versus
the naive design's per-edge messages), bandwidth is paid for the *active*
blocks only, and all inter-group traffic flows leader-to-leader — the same
socket/node locality hierarchy the paper's designs exploit.  Like the
other backends the program is a pure plan interpreter, so the static
:class:`~repro.sim.schedule.Schedule` export mirrors it op for op and the
hybrid fast path replays it bit-identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Generator

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology

#: Tags: gather and redistribution stages, plus one tag per rotation round
#: (``BRUCK_ROUND_TAG + r``).  Distinct from the other algorithms' tag
#: spaces so mixed traces stay readable.
BRUCK_GATHER_TAG = 21
BRUCK_DIST_TAG = 22
BRUCK_ROUND_TAG = 23

#: Valid ``locality`` arguments -> the group width they induce.
LOCALITIES = ("socket", "node")


@dataclass
class _BruckPlan:
    """Per-rank plan: every message this rank exchanges, all three stages."""

    gather_send: int = -1                 #: leader I send my block to (-1: none)
    gather_recvs: tuple[int, ...] = ()    #: members whose block I collect
    #: Rotation rounds, leaders only: (send_to, send_blocks, recv_from,
    #: recv_blocks, tag); -1 peers mark a skipped (empty) direction.
    rounds: tuple[tuple[int, tuple[int, ...], int, tuple[int, ...], int], ...] = ()
    dist_sends: tuple[tuple[int, tuple[int, ...]], ...] = ()  #: (member, blocks)
    dist_recv: tuple[int, tuple[int, ...]] | None = None      #: (leader, blocks)
    self_needs: tuple[int, ...] = ()      #: leader: blocks I copy from my store
    self_copy: bool = False               #: self-loop edge -> local rbuf copy

    @property
    def has_work(self) -> bool:
        return bool(
            self.self_copy
            or self.gather_send >= 0
            or self.gather_recvs
            or self.rounds
            or self.dist_sends
            or self.dist_recv
        )


def _rotation_offsets(n_groups: int) -> tuple[tuple[int, int], ...]:
    """Bruck round structure for ``n_groups``: (offset, chunk_count) pairs.

    ``floor(log2 S)`` doubling rounds (offset ``2^r`` moving ``2^r``
    chunks) plus, when ``S`` is not a power of two, one remainder round
    (offset ``2^K`` moving the last ``S - 2^K`` chunks).  All offsets are
    distinct modulo ``S``, so each round's tag pairs with a unique peer.
    """
    if n_groups <= 1:
        return ()
    k = n_groups.bit_length() - 1
    rounds = [(1 << r, 1 << r) for r in range(k)]
    rem = n_groups - (1 << k)
    if rem:
        rounds.append((1 << k, rem))
    return tuple(rounds)


@register_algorithm(
    capabilities=("schedule", "replan", "oracle", "bench"),
    label="bruck",
)
class LocalityAwareBruckAllgather(NeighborhoodAllgatherAlgorithm):
    """Rotation-indexed log-round allgather between socket/node leaders.

    Parameters
    ----------
    locality:
        ``"socket"`` (default) groups ranks by socket — one rotation
        participant per socket, matching the paper's ``L``-rank locality
        domains; ``"node"`` widens the groups to whole nodes (fewer,
        fatter rotation rounds).
    """

    name = "bruck"

    def __init__(self, locality: str = "socket") -> None:
        super().__init__()
        if locality not in LOCALITIES:
            raise ValueError(
                f"locality must be one of {LOCALITIES}, got {locality!r}"
            )
        self.locality = locality
        self.plans: list[_BruckPlan] | None = None

    def replan(self, survivors, delivered_state):
        """Carry the locality domain into the shrunk communicator; groups,
        leaders, and rotation rounds are rebuilt over the survivors'
        residual topology."""
        return LocalityAwareBruckAllgather(locality=self.locality)

    # -------------------------------------------------------------- building
    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        start = time.perf_counter()
        n = topology.n
        width = (
            machine.spec.ranks_per_socket
            if self.locality == "socket"
            else machine.spec.ranks_per_node
        )
        n_groups = -(-n // width)  # ceil: block placement keeps groups contiguous
        groups = [range(g * width, min((g + 1) * width, n)) for g in range(n_groups)]
        leaders = [g * width for g in range(n_groups)]

        def active(u: int) -> bool:
            out = topology.out_neighbors(u)
            return bool(out) and out != (u,)

        # chunks[g]: the group's active blocks, the unit the rotation moves.
        chunks = [tuple(u for u in grp if active(u)) for grp in groups]
        plans = [_BruckPlan() for _ in range(n)]
        offsets = _rotation_offsets(n_groups)

        setup_messages = 0
        for g, grp in enumerate(groups):
            leader = leaders[g]
            plan = plans[leader]
            # Stage 1 — members announce + send their block to the leader.
            plan.gather_recvs = tuple(u for u in chunks[g] if u != leader)
            for u in plan.gather_recvs:
                plans[u].gather_send = leader
            setup_messages += 2 * (len(grp) - 1)  # neighbor lists + manifests

            # Stage 2 — rotation rounds (leaders agree on chunk composition).
            rounds = []
            for idx, (offset, cnt) in enumerate(offsets):
                send_blocks = tuple(
                    u for j in range(cnt) for u in chunks[(g + j) % n_groups]
                )
                recv_blocks = tuple(
                    u
                    for j in range(cnt)
                    for u in chunks[(g + offset + j) % n_groups]
                )
                send_to = leaders[(g - offset) % n_groups] if send_blocks else -1
                recv_from = leaders[(g + offset) % n_groups] if recv_blocks else -1
                if send_to >= 0 or recv_from >= 0:
                    rounds.append(
                        (send_to, send_blocks, recv_from, recv_blocks,
                         BRUCK_ROUND_TAG + idx)
                    )
                setup_messages += 1  # per-round chunk-composition exchange
            plan.rounds = tuple(rounds)

            # Stage 3 — redistribute exactly what each member needs.
            dist_sends = []
            for m in grp:
                needed = tuple(src for src in topology.in_neighbors(m) if src != m)
                if m == leader:
                    plan.self_needs = needed
                elif needed:
                    dist_sends.append((m, needed))
                    plans[m].dist_recv = (leader, needed)
                if m in topology.out_neighbors(m):
                    plans[m].self_copy = True
            plan.dist_sends = tuple(dist_sends)
        self.plans = plans

        wall = time.perf_counter() - start
        cost = machine.params.cost(LinkClass.INTER_NODE)
        avg_list_bytes = 4.0 * topology.average_outdegree
        simulated = 2.0 * (setup_messages / max(1, n)) * (
            cost.alpha + avg_list_bytes / cost.beta
        )
        return SetupStats(
            protocol_messages=setup_messages,
            simulated_time=simulated,
            wall_time=wall,
            extras={
                "locality": self.locality,
                "groups": n_groups,
                "rounds": len(offsets),
            },
        )

    def build_schedule(self, ctx: ExecutionContext):
        """Static schedule mirroring :meth:`_run` op for op."""
        from repro.sim.schedule import Schedule

        self.require_setup()
        assert self.plans is not None
        n = ctx.topology.n
        all_ops: list[list[tuple] | None] = []
        deliveries: list[list[int]] = []
        for rank in range(n):
            plan = self.plans[rank]
            if not plan.has_work:
                all_ops.append(None)
                deliveries.append([])
                continue
            my_size = ctx.size_of(rank)
            ops: list[tuple] = []
            dels: list[int] = []
            if plan.self_copy:
                ops.append(("charge", my_size))
                dels.append(rank)
            # Stage 1 — gather into the leader's rotation store.
            for src in plan.gather_recvs:
                ops.append(("recv", src, BRUCK_GATHER_TAG))
            if plan.gather_send >= 0:
                ops.append(("send", plan.gather_send, my_size, BRUCK_GATHER_TAG))
            if plan.gather_recvs or plan.gather_send >= 0:
                ops.append(("wait",))
            for src in plan.gather_recvs:
                ops.append(("charge", ctx.size_of(src)))  # stage into store
            # Stage 2 — rotation rounds.
            for send_to, send_blocks, recv_from, recv_blocks, tag in plan.rounds:
                if recv_from >= 0:
                    ops.append(("recv", recv_from, tag))
                if send_to >= 0:
                    nbytes = ctx.sizes_of(send_blocks)
                    ops.append(("charge", nbytes))  # pack rotation message
                    ops.append(("send", send_to, nbytes, tag))
                ops.append(("wait",))
                if recv_from >= 0:
                    ops.append(("charge", ctx.sizes_of(recv_blocks)))  # unpack
            # Stage 3 — redistribute to members / local copies.
            for member, blocks in plan.dist_sends:
                nbytes = ctx.sizes_of(blocks)
                ops.append(("charge", nbytes))  # pack
                ops.append(("send", member, nbytes, BRUCK_DIST_TAG))
            if plan.dist_recv is not None:
                ops.append(("recv", plan.dist_recv[0], BRUCK_DIST_TAG))
            if plan.dist_sends or plan.dist_recv is not None:
                ops.append(("wait",))
            if plan.dist_recv is not None:
                ops.append(("charge", ctx.sizes_of(plan.dist_recv[1])))  # unpack
                dels.extend(plan.dist_recv[1])
            dels.extend(plan.self_needs)
            all_ops.append(ops)
            deliveries.append(dels)
        return Schedule(n, all_ops, deliveries)

    # -------------------------------------------------------------- operation
    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        self.require_setup()
        assert self.plans is not None
        plan = self.plans[comm.rank]
        if not plan.has_work:
            return None
        return self._run(comm, ctx, plan)

    def _run(self, comm: SimCommunicator, ctx: ExecutionContext, plan: _BruckPlan) -> Generator:
        rank = comm.rank
        my_size = ctx.size_of(rank)
        results = ctx.results[rank]
        payload = ctx.payloads[rank]

        if plan.self_copy:
            comm.charge_memcpy(my_size)
            results[rank] = payload

        store: dict[int, object] = {rank: payload}

        # Stage 1 — gather into the leader's rotation store.
        g_recv = [comm.irecv(src, tag=BRUCK_GATHER_TAG) for src in plan.gather_recvs]
        g_send = []
        if plan.gather_send >= 0:
            g_send.append(
                comm.isend(plan.gather_send, my_size, tag=BRUCK_GATHER_TAG,
                           payload=payload)
            )
        if g_recv or g_send:
            yield comm.waitall(g_recv + g_send)
        for req in g_recv:
            comm.charge_memcpy(req.nbytes)  # stage into store
            store[req.source] = req.payload

        # Stage 2 — rotation rounds.
        for send_to, send_blocks, recv_from, recv_blocks, tag in plan.rounds:
            reqs = []
            rreq = None
            if recv_from >= 0:
                rreq = comm.irecv(recv_from, tag=tag)
                reqs.append(rreq)
            if send_to >= 0:
                nbytes = ctx.sizes_of(send_blocks)
                comm.charge_memcpy(nbytes)  # pack rotation message
                out_payload = tuple((src, store[src]) for src in send_blocks)
                reqs.append(comm.isend(send_to, nbytes, tag=tag, payload=out_payload))
            yield comm.waitall(reqs)
            if rreq is not None:
                expected = ctx.sizes_of(recv_blocks)
                if rreq.nbytes != expected:
                    raise AssertionError(
                        f"rank {rank}: rotation message from {recv_from} has "
                        f"{rreq.nbytes} bytes, expected {expected}"
                    )
                comm.charge_memcpy(rreq.nbytes)  # unpack
                for src, pay in rreq.payload:
                    store[src] = pay

        # Stage 3 — redistribute to members / local copies.
        d_send = []
        for member, blocks in plan.dist_sends:
            nbytes = ctx.sizes_of(blocks)
            comm.charge_memcpy(nbytes)  # pack
            out_payload = tuple((src, store[src]) for src in blocks)
            d_send.append(
                comm.isend(member, nbytes, tag=BRUCK_DIST_TAG, payload=out_payload)
            )
        d_recv = None
        if plan.dist_recv is not None:
            d_recv = comm.irecv(plan.dist_recv[0], tag=BRUCK_DIST_TAG)
        if d_send or d_recv is not None:
            yield comm.waitall(d_send + ([d_recv] if d_recv is not None else []))
        if d_recv is not None:
            leader, blocks = plan.dist_recv
            expected = ctx.sizes_of(blocks)
            if d_recv.nbytes != expected:
                raise AssertionError(
                    f"rank {rank}: redistribution message from {leader} has "
                    f"{d_recv.nbytes} bytes, expected {expected}"
                )
            comm.charge_memcpy(d_recv.nbytes)  # unpack into rbuf
            for src, pay in d_recv.payload:
                results[src] = pay
        for src in plan.self_needs:
            results[src] = store[src]
