"""Algorithm interface, registry, and execution context.

An algorithm separates *pattern creation* (:meth:`setup`, the work MPI does
once inside ``MPI_Dist_graph_create_adjacent``) from *operation*
(:meth:`program`, executed on every ``MPI_Neighbor_allgather`` call).  The
paper measures both: Figs. 4-7 time the operation; Fig. 8 the setup.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Generator

from repro.cluster.machine import Machine
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology


@dataclass
class SetupStats:
    """Cost of pattern creation (the Fig. 8 quantities).

    ``protocol_messages`` counts control messages the setup would exchange
    on a real machine; ``simulated_time`` prices them through the machine's
    Hockney costs; ``wall_time`` is the Python wall-clock spent building.
    """

    protocol_messages: int = 0
    simulated_time: float = 0.0
    wall_time: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExecutionContext:
    """Everything a rank program needs for one allgather invocation.

    ``payloads[r]`` is rank r's send-buffer object (any Python object; the
    harness uses the rank id so block identity is checkable).  ``results[r]``
    collects what lands in rank r's receive buffer, keyed by source rank.
    ``msg_size`` is the byte size of each rank's block (``m`` in the paper);
    for the allgatherv variant, ``block_sizes`` overrides it per source rank
    (``msg_size`` then holds the maximum, for reporting).
    """

    topology: DistGraphTopology
    machine: Machine
    msg_size: int
    payloads: list[Any]
    results: list[dict[int, Any]]
    block_sizes: list[int] | None = None

    def size_of(self, src: int) -> int:
        """Byte size of rank ``src``'s block."""
        return self.msg_size if self.block_sizes is None else self.block_sizes[src]

    def sizes_of(self, blocks) -> int:
        """Total bytes of a sequence of source-rank block ids."""
        if self.block_sizes is None:
            return self.msg_size * len(blocks)
        return sum(self.block_sizes[src] for src in blocks)


class NeighborhoodAllgatherAlgorithm(abc.ABC):
    """A neighborhood-allgather implementation.

    Subclasses set :attr:`name`, build their plan in :meth:`setup`, and
    emit per-rank simulator programs from :meth:`program`.
    """

    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self._topology: DistGraphTopology | None = None
        self._machine: Machine | None = None
        self.setup_stats: SetupStats | None = None
        self._schedule_cache: tuple | None = None

    # ------------------------------------------------------------- lifecycle
    def setup(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        """Build the communication plan; idempotent for the same inputs."""
        if topology.n > machine.spec.n_ranks:
            raise ValueError(
                f"topology has {topology.n} ranks but machine only "
                f"{machine.spec.n_ranks}"
            )
        if self._topology is topology and self._machine is machine and self.setup_stats:
            return self.setup_stats
        self._topology = topology
        self._machine = machine
        self.setup_stats = self._build(topology, machine)
        return self.setup_stats

    @abc.abstractmethod
    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        """Subclass hook: build internal plan, return its cost."""

    @abc.abstractmethod
    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        """The rank's simulator program for one allgather call.

        May return ``None`` when the rank has nothing to do.
        """

    def build_schedule(self, ctx: ExecutionContext):
        """Static op schedule equivalent to :meth:`program`, or ``None``.

        Algorithms whose programs are pure plan interpreters (all three
        shipped ones) override this to emit a
        :class:`~repro.sim.schedule.Schedule` describing exactly the ops
        their generators would perform, enabling the engine-free fast path
        (``sim_mode="auto"``/``"analytic"``).  The default ``None`` means
        "no static schedule available" and forces the discrete-event path.
        """
        return None

    def schedule_for(self, ctx: ExecutionContext):
        """Memoized :meth:`build_schedule`.

        A schedule depends only on the plan (pinned by :meth:`setup`'s own
        identity key: topology + machine) and the block sizes — not on
        payloads or result buffers — so repeated invocations with the same
        inputs (bench repeats, warm sweeps) reuse one schedule, which in
        turn keeps its compiled fast-path segments warm.  Strong references
        to the keyed objects are held in the cache entry, so identity
        checks can never alias recycled ids.
        """
        cached = self._schedule_cache
        if (
            cached is not None
            and cached[0] is ctx.topology
            and cached[1] is ctx.machine
            and cached[2] == ctx.msg_size
            and cached[3] == ctx.block_sizes
        ):
            return cached[4]
        schedule = self.build_schedule(ctx)
        self._schedule_cache = (
            ctx.topology,
            ctx.machine,
            ctx.msg_size,
            None if ctx.block_sizes is None else list(ctx.block_sizes),
            schedule,
        )
        return schedule

    def replan(
        self,
        survivors: tuple[int, ...],
        delivered_state: list[dict[int, Any]],
    ) -> "NeighborhoodAllgatherAlgorithm":
        """ULFM-style recovery hook: a fresh instance for the shrunk run.

        After a fail-stop failure the runner rebuilds the communicator over
        ``survivors`` (original rank ids, ascending) and re-runs the
        collective over the *residual* topology — only the edges whose
        blocks ``delivered_state`` shows as not yet delivered.  This hook
        returns the algorithm instance to set up over that residual
        topology; the default clones the type with default parameters, and
        parameterized algorithms override it to carry their tuning across
        the replan.  The returned instance is ``setup()`` by the runner
        (recovery pays pattern-creation cost again, like a real
        ``MPI_Comm_shrink`` + re-negotiation).
        """
        return type(self)()

    # ---------------------------------------------------------------- helpers
    @property
    def is_setup(self) -> bool:
        return self.setup_stats is not None

    def require_setup(self) -> None:
        if not self.is_setup:
            raise RuntimeError(f"{self.name}: setup() must run before program()")

    def program_factory(self, ctx: ExecutionContext) -> Callable[[int], Callable]:
        """Adapter for :meth:`Engine.spawn_all`."""
        self.require_setup()

        def factory(rank: int):
            return lambda comm: self.program(comm, ctx)

        return factory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ready" if self.is_setup else "unset"
        return f"{type(self).__name__}(name={self.name!r}, {state})"


#: The capability vocabulary.  Registration validates declared capabilities
#: against this set, so a typo ("shedule") fails at import time, not when a
#: bench silently skips the backend.  See docs/ARCHITECTURE.md ("the
#: algorithm zoo") for what each flag promises.
CAPABILITIES = frozenset({
    "schedule",    # exports a static Schedule (overrides build_schedule)
    "replan",      # supports on_failure="shrink" over a residual topology
    "setup_free",  # zero pattern-creation cost; usable as a degrade target
    "oracle",      # enrolled as a mutual oracle in repro.verify fuzzing
    "bench",       # enrolled in the bench sweeps / figures / resilience grids
    "tunable",     # has a tuning grid (declared via ``tuning=``)
})

#: The registry-resolved degrade/fallback target: the algorithm every
#: ``fallback=`` / ``on_failure="degrade"`` path restarts with.  Its
#: registration must declare ``setup_free`` (checked in
#: :func:`register_algorithm`) — degrading to an algorithm that itself
#: needs a setup exchange would be circular.
SETUP_FREE_FALLBACK = "naive"


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry: an algorithm class plus its declared capabilities.

    ``bench_kwargs`` are the constructor arguments benches use for the
    single-variant grids (resilience, wallclock, smoke sweeps);
    ``tuning`` maps parameter name -> value grid for benches that sweep a
    family (fig5/fig6 run every Common Neighbor ``k``); ``label`` is the
    short column/record prefix used in reports (``cn`` -> ``cn4_time``).
    """

    name: str
    cls: type[NeighborhoodAllgatherAlgorithm]
    capabilities: frozenset[str]
    label: str
    bench_kwargs: tuple[tuple[str, Any], ...] = ()
    tuning: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def has(self, *caps: str) -> bool:
        return all(c in self.capabilities for c in caps)

    def tuning_values(self, param: str) -> tuple[Any, ...]:
        for p, values in self.tuning:
            if p == param:
                return values
        raise KeyError(f"{self.name!r} declares no tuning grid for {param!r}")


_REGISTRY: dict[str, AlgorithmInfo] = {}


def register_algorithm(
    cls: type[NeighborhoodAllgatherAlgorithm] | None = None,
    *,
    capabilities: frozenset[str] | tuple[str, ...] = (),
    label: str | None = None,
    bench_kwargs: tuple[tuple[str, Any], ...] = (),
    tuning: tuple[tuple[str, tuple[Any, ...]], ...] = (),
):
    """Class decorator: register under ``cls.name`` with declared capabilities.

    Usable bare (``@register_algorithm``, no capabilities — the backend is
    lookup-only) or with arguments.  Declarations are validated here so a
    broken registration fails at import time: unknown capability names,
    ``schedule``/``replan`` without the matching method override, ``tunable``
    without a grid (or a grid without ``tunable``), ``bench_kwargs`` the
    constructor rejects, and a :data:`SETUP_FREE_FALLBACK` registration
    that is not actually setup-free are all errors.
    """

    def _register(cls: type[NeighborhoodAllgatherAlgorithm]):
        if not cls.name or cls.name == "abstract":
            raise ValueError(f"{cls.__name__} must define a unique non-abstract name")
        if cls.name in _REGISTRY:
            raise ValueError(f"algorithm {cls.name!r} already registered")
        caps = frozenset(capabilities)
        unknown = caps - CAPABILITIES
        if unknown:
            raise ValueError(
                f"{cls.name!r} declares unknown capabilities {sorted(unknown)}; "
                f"known: {sorted(CAPABILITIES)}"
            )
        base = NeighborhoodAllgatherAlgorithm
        if "schedule" in caps and cls.build_schedule is base.build_schedule:
            raise ValueError(
                f"{cls.name!r} declares 'schedule' but does not override build_schedule"
            )
        if "replan" in caps and cls.replan is base.replan:
            raise ValueError(
                f"{cls.name!r} declares 'replan' but does not override replan"
            )
        if ("tunable" in caps) != bool(tuning):
            raise ValueError(
                f"{cls.name!r}: 'tunable' capability and a tuning= grid "
                "must be declared together"
            )
        if cls.name == SETUP_FREE_FALLBACK and "setup_free" not in caps:
            raise ValueError(
                f"{cls.name!r} is the SETUP_FREE_FALLBACK and must declare 'setup_free'"
            )
        if "bench" in caps:
            cls(**dict(bench_kwargs))  # bench_kwargs must construct cleanly
        _REGISTRY[cls.name] = AlgorithmInfo(
            name=cls.name,
            cls=cls,
            capabilities=caps,
            label=label or cls.name,
            bench_kwargs=tuple(bench_kwargs),
            tuning=tuple((p, tuple(vs)) for p, vs in tuning),
        )
        return cls

    if cls is not None:
        return _register(cls)
    return _register


def algorithm_info(name: str) -> AlgorithmInfo:
    """The registry entry for ``name`` (KeyError listing alternatives)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}") from None


def list_algorithms(requires: frozenset[str] | set[str] | tuple[str, ...] = ()) -> tuple[AlgorithmInfo, ...]:
    """Registered algorithms declaring every capability in ``requires``.

    Returned in registration order (stable across runs — import order of
    :mod:`repro.collectives` fixes it), so benches and reports keep their
    historical row order when queried instead of hardcoded.
    """
    wanted = frozenset(requires)
    unknown = wanted - CAPABILITIES
    if unknown:
        raise ValueError(
            f"unknown capabilities {sorted(unknown)}; known: {sorted(CAPABILITIES)}"
        )
    return tuple(info for info in _REGISTRY.values() if wanted <= info.capabilities)


def get_algorithm(name: str, **kwargs) -> NeighborhoodAllgatherAlgorithm:
    """Instantiate a registered algorithm by name (kwargs to its __init__)."""
    return algorithm_info(name).cls(**kwargs)


def available_algorithms() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
