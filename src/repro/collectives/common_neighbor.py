"""The Common Neighbor algorithm (Ghazimirsaeed et al., IPDPS'19).

Groups of ``K`` ranks (consecutive, socket-local — the collaborating
processes must be cheap to reach) combine messages: members first exchange
their blocks inside the group (phase 1), then, for every outgoing neighbor
shared by group members, a single *assignee* delivers one combined message
carrying all the group's blocks destined to that neighbor (phase 2).
Neighbors of only one member keep their original sender, so combining never
adds hops where it cannot remove messages.

The paper runs this baseline "with various values of K" and reports the
best; the benchmarks do the same (see ``repro.bench``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generator

from repro.cluster.machine import Machine
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.cluster.spec import LinkClass
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology
from repro.utils.validation import check_positive

#: Tags for the two phases.
P1_TAG = 1
P2_TAG = 2


@dataclass
class _RankPlan:
    """Per-rank plan: who I exchange with in each phase."""

    group: tuple[int, ...] = ()
    phase1_sends: tuple[int, ...] = ()           #: members I send my block to
    phase1_recvs: tuple[int, ...] = ()           #: members whose block I receive
    phase1_for_me: tuple[int, ...] = ()          #: subset that lands in my rbuf
    phase2_sends: tuple[tuple[int, tuple[int, ...]], ...] = ()  #: (target, blocks)
    phase2_recvs: tuple[tuple[int, tuple[int, ...]], ...] = ()  #: (assignee, blocks)
    self_copy: bool = False


@register_algorithm(
    capabilities=("schedule", "replan", "oracle", "bench", "tunable"),
    label="cn",
    bench_kwargs=(("k", 4),),
    tuning=(("k", (2, 4, 8)),),
)
class CommonNeighborAllgather(NeighborhoodAllgatherAlgorithm):
    """Message combining over groups of ``k`` common-neighbor ranks."""

    name = "common_neighbor"

    def __init__(self, k: int = 4) -> None:
        super().__init__()
        self.k = check_positive("k", k)
        self.plans: list[_RankPlan] | None = None

    def replan(self, survivors, delivered_state):
        """Carry the group size ``k`` into the shrunk communicator; groups
        are re-formed from scratch over the survivors' residual topology."""
        return CommonNeighborAllgather(k=self.k)

    # -------------------------------------------------------------- building
    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        start = time.perf_counter()
        n = topology.n
        plans = [_RankPlan() for _ in range(n)]
        groups = self._form_groups(n, machine)

        # Setup communication, as in the published design: every rank learns
        # the outgoing-neighbor lists of the others to build its Matrix A
        # (an all-to-all of neighbor lists, n*(n-1) messages), plus the
        # intra-group exchange that settles assignments.
        setup_messages = n * (n - 1)
        for group in groups:
            setup_messages += len(group) * (len(group) - 1)
            self._plan_group(topology, group, plans)
        # Mirror phase-2 sends into receive lists.
        recvs: dict[int, list[tuple[int, tuple[int, ...]]]] = {v: [] for v in range(n)}
        for r, plan in enumerate(plans):
            if r in topology.out_neighbors(r):
                plan.self_copy = True
            for target, blocks in plan.phase2_sends:
                recvs[target].append((r, blocks))
        for v, lst in recvs.items():
            plans[v].phase2_recvs = tuple(sorted(lst))
        self.plans = plans

        wall = time.perf_counter() - start
        cost = machine.params.cost(LinkClass.INTER_NODE)
        # Neighbor lists are outdegree 4-byte rank ids.
        avg_list_bytes = 4.0 * topology.average_outdegree
        simulated = 2.0 * (setup_messages / max(1, n)) * (cost.alpha + avg_list_bytes / cost.beta)
        return SetupStats(
            protocol_messages=setup_messages,
            simulated_time=simulated,
            wall_time=wall,
            extras={"k": self.k, "groups": len(groups)},
        )

    def _form_groups(self, n: int, machine: Machine) -> list[tuple[int, ...]]:
        """Consecutive chunks of ``k`` ranks, never straddling a socket."""
        L = machine.spec.ranks_per_socket
        groups: list[tuple[int, ...]] = []
        for socket_start in range(0, n, L):
            socket_end = min(socket_start + L, n)
            for lo in range(socket_start, socket_end, self.k):
                groups.append(tuple(range(lo, min(lo + self.k, socket_end))))
        return groups

    def _plan_group(
        self,
        topology: DistGraphTopology,
        group: tuple[int, ...],
        plans: list[_RankPlan],
    ) -> None:
        members = set(group)
        # srcs[v]: group members whose block target v needs, in member order.
        srcs: dict[int, list[int]] = {}
        for g in group:
            for v in topology.out_neighbors(g):
                if v == g:
                    continue  # self-loops handled locally
                srcs.setdefault(v, []).append(g)

        # Assignment: member targets deliver to themselves (via phase 1);
        # single-source targets keep their original sender; shared external
        # targets round-robin to the least-loaded member.
        load = {g: 0 for g in group}
        assignee: dict[int, int] = {}
        for v in sorted(srcs):
            if v in members:
                assignee[v] = v
            elif len(srcs[v]) == 1:
                assignee[v] = srcs[v][0]
                load[srcs[v][0]] += 1
            else:
                best = min(group, key=lambda g: (load[g], g))
                assignee[v] = best
                load[best] += len(srcs[v])

        # Phase-1 pairs: g's block must reach assignee a for every target.
        p1_pairs: set[tuple[int, int]] = set()
        for v, a in assignee.items():
            for g in srcs[v]:
                if g != a:
                    p1_pairs.add((g, a))

        p1_send: dict[int, list[int]] = {g: [] for g in group}
        p1_recv: dict[int, list[int]] = {g: [] for g in group}
        for g, a in sorted(p1_pairs):
            p1_send[g].append(a)
            p1_recv[a].append(g)

        p2_send: dict[int, list[tuple[int, tuple[int, ...]]]] = {g: [] for g in group}
        for v in sorted(assignee):
            a = assignee[v]
            if v in members:
                continue  # delivered by phase 1 + local rbuf copy
            p2_send[a].append((v, tuple(srcs[v])))

        for g in group:
            plan = plans[g]
            plan.group = group
            plan.phase1_sends = tuple(p1_send[g])
            plan.phase1_recvs = tuple(p1_recv[g])
            plan.phase1_for_me = tuple(
                src for src in p1_recv[g] if g in topology.out_neighbors(src)
            )
            plan.phase2_sends = tuple(p2_send[g])

    def build_schedule(self, ctx: ExecutionContext):
        """Static schedule mirroring :meth:`_run` op for op."""
        from repro.sim.schedule import Schedule

        self.require_setup()
        assert self.plans is not None
        n = ctx.topology.n
        all_ops: list[list[tuple] | None] = []
        deliveries: list[list[int]] = []
        for rank in range(n):
            plan = self.plans[rank]
            my_size = ctx.size_of(rank)
            ops: list[tuple] = []
            dels: list[int] = []
            if plan.self_copy:
                ops.append(("charge", my_size))
                dels.append(rank)
            # Phase 1: exchange blocks within the group.
            for src in plan.phase1_recvs:
                ops.append(("recv", src, P1_TAG))
            for dst in plan.phase1_sends:
                ops.append(("send", dst, my_size, P1_TAG))
            if plan.phase1_recvs or plan.phase1_sends:
                ops.append(("wait",))
            for src in plan.phase1_recvs:
                ops.append(("charge", ctx.size_of(src)))  # combining-buffer stage
            dels.extend(plan.phase1_for_me)
            # Phase 2: one combined message per assigned external target.
            for target, blocks in plan.phase2_sends:
                nbytes = ctx.sizes_of(blocks)
                ops.append(("charge", nbytes))  # pack
                ops.append(("send", target, nbytes, P2_TAG))
            for sender, _ in plan.phase2_recvs:
                ops.append(("recv", sender, P2_TAG))
            if plan.phase2_sends or plan.phase2_recvs:
                ops.append(("wait",))
            for _, blocks in plan.phase2_recvs:
                ops.append(("charge", ctx.sizes_of(blocks)))  # unpack into rbuf
                dels.extend(blocks)
            all_ops.append(ops)
            deliveries.append(dels)
        return Schedule(n, all_ops, deliveries)

    # -------------------------------------------------------------- operation
    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        self.require_setup()
        assert self.plans is not None
        return self._run(comm, ctx, self.plans[comm.rank])

    def _run(self, comm: SimCommunicator, ctx: ExecutionContext, plan: _RankPlan) -> Generator:
        rank = comm.rank
        my_size = ctx.size_of(rank)
        results = ctx.results[rank]
        payload = ctx.payloads[rank]

        if plan.self_copy:
            comm.charge_memcpy(my_size)
            results[rank] = payload

        # Phase 1: exchange blocks within the group.
        p1_recv = [comm.irecv(src, tag=P1_TAG) for src in plan.phase1_recvs]
        p1_send = [
            comm.isend(dst, my_size, tag=P1_TAG, payload=payload) for dst in plan.phase1_sends
        ]
        if p1_recv or p1_send:
            yield comm.waitall(p1_recv + p1_send)

        group_blocks: dict[int, object] = {rank: payload}
        for req in p1_recv:
            comm.charge_memcpy(req.nbytes)  # stage into the combining buffer
            group_blocks[req.source] = req.payload
        for src in plan.phase1_for_me:
            results[src] = group_blocks[src]

        # Phase 2: one combined message per assigned external target.
        p2_send = []
        for target, blocks in plan.phase2_sends:
            nbytes = ctx.sizes_of(blocks)
            comm.charge_memcpy(nbytes)  # pack
            out_payload = tuple((src, group_blocks[src]) for src in blocks)
            p2_send.append(comm.isend(target, nbytes, tag=P2_TAG, payload=out_payload))
        p2_recv = [comm.irecv(sender, tag=P2_TAG) for sender, _ in plan.phase2_recvs]
        if p2_send or p2_recv:
            yield comm.waitall(p2_send + p2_recv)

        for (sender, blocks), req in zip(plan.phase2_recvs, p2_recv):
            expected = ctx.sizes_of(blocks)
            if req.nbytes != expected:
                raise AssertionError(
                    f"rank {rank}: phase-2 message from {sender} has {req.nbytes} "
                    f"bytes, expected {expected}"
                )
            comm.charge_memcpy(req.nbytes)  # unpack into rbuf
            for src, pay in req.payload:
                results[src] = pay
