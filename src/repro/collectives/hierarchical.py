"""Hierarchical leader-based neighborhood allgather.

The paper's related work (Ghazimirsaeed et al., SC'20 [9]) improves
medium/large-message neighborhood collectives with a *hierarchical,
load-aware* design: node leaders aggregate their node's outgoing blocks,
exchange combined node-to-node messages, and distribute incoming blocks
locally.  The paper cites it but benchmarks against the Common Neighbor
algorithm; we ship this as an additional baseline because large-message
users would reach for it.

Three phases per call:

1. **Aggregation** (intra-node): each rank with off-node targets sends its
   block to its assigned leader (round-robin over ``leaders_per_node``
   leaders — the load-aware knob).
2. **Exchange** (inter-node): leader ``a`` sends leader ``b`` one combined
   message with every block of ``a``'s flock needed by ``b``'s flock.
3. **Distribution** (intra-node): leaders forward received blocks to their
   local targets, one combined message per target.

Intra-node edges bypass the hierarchy (direct shared-memory sends), and
self-edges are local copies.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Generator

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology
from repro.utils.validation import check_positive

#: Phase tags.
AGG_TAG, EXCH_TAG, DIST_TAG, LOCAL_TAG = 11, 12, 13, 14


@dataclass
class _HierPlan:
    """Per-rank plan for the three phases."""

    leader: int = -1                      #: my assigned leader (may be myself)
    agg_send: bool = False                #: phase 1: ship my block to the leader
    agg_recvs: tuple[int, ...] = ()       #: leader: flock members whose block arrives
    exch_sends: tuple[tuple[int, tuple[int, ...]], ...] = ()  #: (peer leader, blocks)
    exch_recvs: tuple[tuple[int, tuple[int, ...]], ...] = ()
    dist_sends: tuple[tuple[int, tuple[int, ...]], ...] = ()  #: (local target, blocks)
    dist_recvs: tuple[tuple[int, tuple[int, ...]], ...] = ()
    local_sends: tuple[int, ...] = ()     #: direct intra-node targets
    local_recvs: tuple[int, ...] = ()
    self_copy: bool = False


@register_algorithm
class HierarchicalAllgather(NeighborhoodAllgatherAlgorithm):
    """Leader-based hierarchical neighborhood allgather (SC'20-style)."""

    name = "hierarchical"

    def __init__(self, leaders_per_node: int = 2) -> None:
        super().__init__()
        self.leaders_per_node = check_positive("leaders_per_node", leaders_per_node)
        self.plans: list[_HierPlan] | None = None

    # ------------------------------------------------------------------ setup
    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        start = time.perf_counter()
        n = topology.n
        spec = machine.spec
        n_leaders = min(self.leaders_per_node, spec.ranks_per_node)

        def node_of(r: int) -> int:
            return spec.node_of(r)

        def leader_of(r: int) -> int:
            base = node_of(r) * spec.ranks_per_node
            local = r - base
            slot = local % n_leaders
            return min(base + slot, n - 1)

        plans = [_HierPlan() for _ in range(n)]
        for r in range(n):
            plans[r].leader = leader_of(r)

        # (leader_a, leader_b) -> ordered blocks; (leader_b, target) -> blocks
        exch: dict[tuple[int, int], list[int]] = defaultdict(list)
        dist: dict[tuple[int, int], list[int]] = defaultdict(list)
        agg_needed: dict[int, set[int]] = defaultdict(set)   # leader -> members
        local_edges: list[tuple[int, int]] = []

        for u in range(n):
            for v in topology.out_neighbors(u):
                if v == u:
                    plans[u].self_copy = True
                elif node_of(u) == node_of(v):
                    local_edges.append((u, v))
                else:
                    a, b = leader_of(u), leader_of(v)
                    agg_needed[a].add(u)
                    key = (a, b)
                    if u not in exch[key]:
                        exch[key].append(u)
                    dist[(b, v)].append(u)

        for leader, members in agg_needed.items():
            senders = tuple(sorted(m for m in members if m != leader))
            plans[leader].agg_recvs = senders
            for m in senders:
                plans[m].agg_send = True
            if leader in members:
                pass  # leader's own block is already local

        exch_recv: dict[int, list[tuple[int, tuple[int, ...]]]] = defaultdict(list)
        for (a, b), blocks in sorted(exch.items()):
            if a == b:
                continue  # both flocks on... distinct nodes ⇒ a != b always
            plans[a].exch_sends += ((b, tuple(blocks)),)
            exch_recv[b].append((a, tuple(blocks)))
        for b, lst in exch_recv.items():
            plans[b].exch_recvs = tuple(sorted(lst))

        dist_recv: dict[int, list[tuple[int, tuple[int, ...]]]] = defaultdict(list)
        for (b, v), blocks in sorted(dist.items()):
            blocks_t = tuple(dict.fromkeys(blocks))
            if v == b:
                continue  # the leader is itself the target: recorded on receive
            plans[b].dist_sends += ((v, blocks_t),)
            dist_recv[v].append((b, blocks_t))
        for v, lst in dist_recv.items():
            plans[v].dist_recvs = tuple(sorted(lst))

        for u, v in local_edges:
            plans[u].local_sends += (v,)
            plans[v].local_recvs += (u,)

        self.plans = plans
        wall = time.perf_counter() - start
        # Setup cost: members announce their off-node neighbor lists to the
        # leaders; leaders exchange per-node summaries.
        setup_messages = sum(len(p.agg_recvs) for p in plans) + len(exch)
        cost = machine.params.cost(LinkClass.INTER_NODE)
        simulated = 2.0 * (setup_messages / max(1, n)) * cost.alpha
        return SetupStats(
            protocol_messages=setup_messages,
            simulated_time=simulated,
            wall_time=wall,
            extras={
                "leaders_per_node": n_leaders,
                "exchange_pairs": len(exch),
            },
        )

    # -------------------------------------------------------------- operation
    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        self.require_setup()
        assert self.plans is not None
        return self._run(comm, ctx, self.plans[comm.rank])

    def _run(self, comm: SimCommunicator, ctx: ExecutionContext, plan: _HierPlan) -> Generator:
        rank = comm.rank
        my_size = ctx.size_of(rank)
        results = ctx.results[rank]
        payload = ctx.payloads[rank]

        if plan.self_copy:
            comm.charge_memcpy(my_size)
            results[rank] = payload

        # Phase 0+1: direct intra-node edges and aggregation to leaders.
        reqs = []
        agg_recv = [comm.irecv(m, tag=AGG_TAG) for m in plan.agg_recvs]
        local_recv = [comm.irecv(u, tag=LOCAL_TAG) for u in plan.local_recvs]
        if plan.agg_send:
            reqs.append(comm.isend(plan.leader, my_size, tag=AGG_TAG, payload=payload))
        for v in plan.local_sends:
            reqs.append(comm.isend(v, my_size, tag=LOCAL_TAG, payload=payload))
        if reqs or agg_recv or local_recv:
            yield comm.waitall(reqs + agg_recv + local_recv)
        for req in local_recv:
            results[req.source] = req.payload

        blocks: dict[int, object] = {rank: payload}
        for req in agg_recv:
            comm.charge_memcpy(req.nbytes)  # stage into the node buffer
            blocks[req.source] = req.payload

        # Phase 2: leader-to-leader combined exchange.
        exch_send = []
        for peer, block_ids in plan.exch_sends:
            nbytes = ctx.sizes_of(block_ids)
            comm.charge_memcpy(nbytes)
            out = tuple((src, blocks[src]) for src in block_ids)
            exch_send.append(comm.isend(peer, nbytes, tag=EXCH_TAG, payload=out))
        exch_recv = [comm.irecv(peer, tag=EXCH_TAG) for peer, _ in plan.exch_recvs]
        if exch_send or exch_recv:
            yield comm.waitall(exch_send + exch_recv)

        remote: dict[int, object] = {}
        for (peer, block_ids), req in zip(plan.exch_recvs, exch_recv):
            if req.nbytes != ctx.sizes_of(block_ids):
                raise AssertionError(
                    f"rank {rank}: exchange from {peer} has {req.nbytes} bytes, "
                    f"expected {ctx.sizes_of(block_ids)}"
                )
            comm.charge_memcpy(req.nbytes)
            for src, pay in req.payload:
                remote[src] = pay
                # The leader may itself be a target of src.
                if rank in ctx.topology.out_neighbors(src):
                    results[src] = pay

        # Phase 3: distribute to local targets.
        dist_send = []
        for target, block_ids in plan.dist_sends:
            nbytes = ctx.sizes_of(block_ids)
            comm.charge_memcpy(nbytes)
            out = tuple((src, remote[src] if src in remote else blocks[src])
                        for src in block_ids)
            dist_send.append(comm.isend(target, nbytes, tag=DIST_TAG, payload=out))
        dist_recv = [comm.irecv(leader, tag=DIST_TAG) for leader, _ in plan.dist_recvs]
        if dist_send or dist_recv:
            yield comm.waitall(dist_send + dist_recv)
        for req in dist_recv:
            comm.charge_memcpy(req.nbytes)
            for src, pay in req.payload:
                results[src] = pay
