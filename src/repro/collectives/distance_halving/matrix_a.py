"""Candidates and Matrix A (paper Fig. 3).

For a rank ``p``, the *candidates* ``C`` are the ranks sharing at least one
outgoing neighbor with ``p``; ``A[i][j] = 1`` says candidate ``C[i]`` also
has ``O[j]`` (p's j-th outgoing neighbor) as an outgoing neighbor.  Agent
scores are row sums of ``A`` restricted to the columns that fall in the
current opposite half.

The builder never materializes per-rank A matrices (at 2000+ ranks that is
quadratic memory per rank); it computes block score matrices directly from
the boolean adjacency matrix with one matmul per halving split — numerically
identical, and vectorized.  :func:`build_matrix_a` exists for API fidelity,
tests, and documentation examples.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import DistGraphTopology


def adjacency_matrix(topology: DistGraphTopology) -> np.ndarray:
    """Boolean ``adj[u, v] = (v in O_u)`` for the whole topology."""
    n = topology.n
    adj = np.zeros((n, n), dtype=bool)
    for u in range(n):
        nbrs = topology.out_neighbors(u)
        if nbrs:
            adj[u, list(nbrs)] = True
    return adj


def build_matrix_a(
    topology: DistGraphTopology, rank: int, adj: np.ndarray | None = None
) -> tuple[list[int], np.ndarray]:
    """(candidates ``C``, matrix ``A``) for ``rank``, as in the paper's Fig. 3.

    ``A`` has shape ``(len(C), outdegree)``; ``A[i, j]`` is True when
    ``O[j]`` is an outgoing neighbor of ``C[i]``.  Candidates exclude the
    rank itself and are sorted ascending.
    """
    if adj is None:
        adj = adjacency_matrix(topology)
    out = list(topology.out_neighbors(rank))
    if not out:
        return [], np.zeros((0, 0), dtype=bool)
    shares = adj[:, out]  # shares[c, j]: O[j] is an outgoing neighbor of c
    counts = shares.sum(axis=1)
    counts[rank] = 0
    candidates = np.flatnonzero(counts > 0)
    return candidates.tolist(), shares[candidates]


def half_scores(
    adj_f32: np.ndarray,
    side_a: range,
    side_b: range,
    half: range,
) -> np.ndarray:
    """Shared-outgoing-neighbor counts restricted to ``half``.

    Returns an ``(len(side_a), len(side_b))`` float32 matrix whose entry
    ``[i, j]`` is ``|O_a ∩ O_b ∩ half|`` for ``a = side_a[i]``,
    ``b = side_b[j]``.  ``adj_f32`` is the adjacency matrix as float32
    (bool adjacency cast once by the caller; matmul on float32 avoids the
    uint8 overflow that degrees > 255 would cause).
    """
    lo, hi = half.start, half.stop
    block_a = adj_f32[side_a.start : side_a.stop, lo:hi]
    block_b = adj_f32[side_b.start : side_b.stop, lo:hi]
    return block_a @ block_b.T
