"""Agent/origin selection: the joint mechanism of Algorithms 2 and 3.

Two implementations of the same matching:

* :func:`greedy_matching` — the deterministic fixed point the distributed
  protocol converges to.  With symmetric scores (``|O_a ∩ O_b ∩ half|`` is
  symmetric in a and b) and lowest-rank tie-breaking, the protocol always
  matches the globally best remaining (searcher, acceptor) pair first; that
  is exactly greedy maximum-weight bipartite matching on edges sorted by
  ``(-score, searcher, acceptor)``.  Used as the builder's fast path.

* :func:`protocol_matching` — a faithful, message-by-message emulation of
  the REQ/ACCEPT/DROP/EXIT signal protocol, with WAITING semantics and
  per-signal counting.  Used for the Fig. 8 overhead study and to verify
  (in tests, on random instances) that the greedy fast path produces the
  identical matching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class NegotiationOutcome:
    """Result of one matching round between two halves.

    ``matching`` maps searcher rank -> acceptor rank.  Message counts cover
    every control signal the protocol exchanged (REQ, ACCEPT, DROP, EXIT).
    """

    matching: dict[int, int]
    req_messages: int = 0
    accept_messages: int = 0
    drop_messages: int = 0
    exit_messages: int = 0

    @property
    def total_messages(self) -> int:
        return self.req_messages + self.accept_messages + self.drop_messages + self.exit_messages


def greedy_matching(
    searchers: list[int],
    acceptors: list[int],
    scores: np.ndarray,
) -> dict[int, int]:
    """Maximum-first greedy one-to-one matching.

    ``scores[i, j]`` is the shared-neighbor count between ``searchers[i]``
    and ``acceptors[j]``; zero-score pairs are not candidates.  Edges are
    taken in order of decreasing score, ties broken by (searcher rank,
    acceptor rank) ascending — the protocol's lowest-rank tie-break.
    """
    if scores.shape != (len(searchers), len(acceptors)):
        raise ValueError(
            f"scores shape {scores.shape} does not match "
            f"({len(searchers)}, {len(acceptors)})"
        )
    si, aj = np.nonzero(scores > 0)
    if si.size == 0:
        return {}
    weights = scores[si, aj]
    # lexsort: last key is primary => sort by -weight, then searcher, then acceptor.
    order = np.lexsort((aj, si, -weights))
    matched_s: set[int] = set()
    matched_a: set[int] = set()
    matching: dict[int, int] = {}
    for k in order:
        i, j = int(si[k]), int(aj[k])
        if i in matched_s or j in matched_a:
            continue
        matched_s.add(i)
        matched_a.add(j)
        matching[searchers[i]] = acceptors[j]
        if len(matched_s) == min(len(searchers), len(acceptors)):
            break
    return matching


def random_matching(
    searchers: list[int],
    acceptors: list[int],
    scores: np.ndarray,
    rng: np.random.Generator,
) -> dict[int, int]:
    """Ablation baseline: match candidate pairs in random order.

    Same candidate edges as the load-aware mechanism (score > 0), but the
    matching ignores shared-neighbor counts — this isolates the value of
    the paper's load-aware agent choice.
    """
    if scores.shape != (len(searchers), len(acceptors)):
        raise ValueError(
            f"scores shape {scores.shape} does not match "
            f"({len(searchers)}, {len(acceptors)})"
        )
    si, aj = np.nonzero(scores > 0)
    if si.size == 0:
        return {}
    order = rng.permutation(si.size)
    matched_s: set[int] = set()
    matched_a: set[int] = set()
    matching: dict[int, int] = {}
    for k in order:
        i, j = int(si[k]), int(aj[k])
        if i in matched_s or j in matched_a:
            continue
        matched_s.add(i)
        matched_a.add(j)
        matching[searchers[i]] = acceptors[j]
    return matching


# --------------------------------------------------------------------------
# Protocol emulation (Algorithms 2 & 3)
# --------------------------------------------------------------------------

_REQ, _ACCEPT, _DROP, _EXIT = "REQ", "ACCEPT", "DROP", "EXIT"


@dataclass
class _Searcher:
    """State of one rank running find_agent (Algorithm 2)."""

    rank: int
    # candidate acceptor -> score; ACTIVE candidates only (removed on DROP/match)
    candidates: dict[int, float]
    proposed_to: int | None = None
    matched: int | None = None
    done: bool = False

    def best_candidate(self) -> int | None:
        if not self.candidates:
            return None
        # max score, ties to lowest rank
        return min(self.candidates, key=lambda c: (-self.candidates[c], c))


@dataclass
class _Acceptor:
    """State of one rank running find_origin (Algorithm 3)."""

    rank: int
    # candidate searcher -> score; ACTIVE until EXIT/DROP-resolution
    candidates: dict[int, float]
    waiting: set[int] = field(default_factory=set)
    matched: int | None = None

    def best_candidate(self) -> int | None:
        if not self.candidates:
            return None
        return min(self.candidates, key=lambda c: (-self.candidates[c], c))


def protocol_matching(
    searchers: list[int],
    acceptors: list[int],
    scores: np.ndarray,
) -> NegotiationOutcome:
    """Emulate the REQ/ACCEPT/DROP/EXIT protocol deterministically.

    Signals travel through a FIFO queue (rank order seeds the initial
    proposals), which models an arbitrary-but-deterministic interleaving of
    the asynchronous MPI protocol.  The fixed point — which pairs match —
    is interleaving-independent (see :func:`greedy_matching`); the signal
    *counts* depend mildly on interleaving, as they do on a real machine.
    """
    if scores.shape != (len(searchers), len(acceptors)):
        raise ValueError(
            f"scores shape {scores.shape} does not match "
            f"({len(searchers)}, {len(acceptors)})"
        )
    out = NegotiationOutcome(matching={})

    s_index = {r: i for i, r in enumerate(searchers)}
    a_index = {r: j for j, r in enumerate(acceptors)}
    s_states: dict[int, _Searcher] = {}
    a_states: dict[int, _Acceptor] = {}
    for r, i in s_index.items():
        cands = {acceptors[j]: float(scores[i, j]) for j in np.flatnonzero(scores[i] > 0)}
        s_states[r] = _Searcher(rank=r, candidates=cands)
    for r, j in a_index.items():
        cands = {searchers[i]: float(scores[i, j]) for i in np.flatnonzero(scores[:, j] > 0)}
        a_states[r] = _Acceptor(rank=r, candidates=cands)

    queue: deque[tuple[str, int, int]] = deque()  # (signal, src, dst)

    def send(signal: str, src: int, dst: int) -> None:
        queue.append((signal, src, dst))
        if signal == _REQ:
            out.req_messages += 1
        elif signal == _ACCEPT:
            out.accept_messages += 1
        elif signal == _DROP:
            out.drop_messages += 1
        else:
            out.exit_messages += 1

    def searcher_propose(s: _Searcher) -> None:
        target = s.best_candidate()
        if target is None:
            s.done = True  # agent-selection failed for this rank this step
            return
        s.proposed_to = target
        send(_REQ, s.rank, target)

    def acceptor_accept(a: _Acceptor, s_rank: int) -> None:
        a.matched = s_rank
        out.matching[s_rank] = a.rank
        send(_ACCEPT, a.rank, s_rank)
        # DROP everyone else still active or waiting (Algorithm 3, line 20).
        for other in sorted(set(a.candidates) | a.waiting):
            if other != s_rank:
                send(_DROP, a.rank, other)
        a.candidates.clear()
        a.waiting.clear()

    def acceptor_try_best(a: _Acceptor) -> None:
        """Accept the current best candidate if it is already WAITING."""
        if a.matched is not None:
            return
        best = a.best_candidate()
        if best is not None and best in a.waiting:
            acceptor_accept(a, best)

    # Algorithm 2 line 13-18: every searcher opens with a proposal.
    for r in sorted(s_states):
        searcher_propose(s_states[r])
    # Acceptors whose candidate set is empty are trivially done already.

    while queue:
        signal, src, dst = queue.popleft()
        if signal == _REQ:
            a = a_states[dst]
            if a.matched is not None or src not in a.candidates:
                send(_DROP, dst, src)
            elif src == a.best_candidate():
                acceptor_accept(a, src)
            else:
                a.waiting.add(src)  # Algorithm 3, line 39: defer the reply
        elif signal == _ACCEPT:
            s = s_states[dst]
            s.matched = src
            s.done = True
            # EXIT to every other still-active candidate (Algorithm 2, line 29).
            for other in sorted(s.candidates):
                if other != src:
                    send(_EXIT, s.rank, other)
            s.candidates.clear()
        elif signal == _DROP:
            s = s_states[dst]
            if s.matched is not None:
                continue  # stale DROP after a successful match elsewhere
            s.candidates.pop(src, None)
            if s.proposed_to == src:
                searcher_propose(s)  # Algorithm 2, line 32: look for a new agent
            else:
                send(_EXIT, s.rank, src)  # Algorithm 2, line 34
        else:  # EXIT: the searcher will never request this acceptor
            a = a_states[dst]
            was_best = src == a.best_candidate()
            a.candidates.pop(src, None)
            a.waiting.discard(src)
            if was_best:
                acceptor_try_best(a)  # Algorithm 3, line 46: update best origin

    # Sanity: nobody should be left proposed-but-unanswered.
    for s in s_states.values():
        if s.matched is None and not s.done and s.candidates:
            raise RuntimeError(
                f"negotiation stalled: searcher {s.rank} still has candidates "
                f"{sorted(s.candidates)}"
            )
    return out
