"""Communication-pattern data model for Distance Halving.

The pattern is what ``MPI_Dist_graph_create_adjacent`` would attach to the
communicator: for every rank, its per-step agent/origin, the exact block
composition of every message it will send or receive, and the final
intra-socket phase's send/receive lists.  Everything Algorithm 4 needs at
operation time — no control information travels with the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class HalvingStep:
    """One halving step of one rank (Algorithm 1's ``step``).

    Attributes
    ----------
    index:
        Global halving level ``t`` (doubles as the message tag).
    agent:
        Rank receiving this rank's ``main_buf`` this step, or ``None`` if
        agent selection failed / was not needed.
    origin:
        Rank whose ``main_buf`` arrives this step, or ``None``.
    send_block_count:
        Number of ``m``-byte blocks in ``main_buf`` at the start of the
        step (the ``d_old`` bytes of Algorithm 4, divided by ``m``).
    recv_blocks:
        Source ranks of the blocks in the incoming message, in buffer
        order (may contain duplicates: buffers are forwarded wholesale).
    recv_for_me:
        Sources among ``recv_blocks`` whose block is destined to this
        rank's own receive buffer (this rank appeared in the incoming
        descriptor ``D``).
    send_pairs / recv_pairs:
        Only populated when the pattern is built with ``record_pairs=True``
        (needed by the alltoall variant, where every (source, target) pair
        carries distinct data): the exact duty pairs shipped to the agent /
        received from the origin this step, in a deterministic order.
    """

    index: int
    agent: int | None
    origin: int | None
    send_block_count: int
    recv_blocks: tuple[int, ...]
    recv_for_me: tuple[int, ...]
    send_pairs: tuple[tuple[int, int], ...] | None = None
    recv_pairs: tuple[tuple[int, int], ...] | None = None


@dataclass(frozen=True, slots=True)
class FinalSend:
    """Intra-socket-phase (or direct leftover) message to ``target``.

    ``blocks`` lists the source ranks whose data is packed, in main-buffer
    order; every block is destined to ``target``'s receive buffer.
    """

    target: int
    blocks: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class FinalRecv:
    """Final-phase message expected from ``sender``; all blocks are for me."""

    sender: int
    blocks: tuple[int, ...]


@dataclass
class RankPattern:
    """Complete plan for one rank."""

    rank: int
    steps: list[HalvingStep] = field(default_factory=list)
    final_sends: list[FinalSend] = field(default_factory=list)
    final_recvs: list[FinalRecv] = field(default_factory=list)
    self_copy: bool = False  #: topology has a self-loop: copy sbuf -> rbuf locally

    @property
    def halving_sends(self) -> int:
        return sum(1 for s in self.steps if s.agent is not None)

    @property
    def halving_recvs(self) -> int:
        return sum(1 for s in self.steps if s.origin is not None)

    def max_buffer_blocks(self) -> int:
        """Peak ``main_buf`` size in blocks (memory footprint check)."""
        peak = 1
        for s in self.steps:
            peak = max(peak, s.send_block_count + len(s.recv_blocks))
        return peak


@dataclass
class PatternStats:
    """Aggregate construction statistics (Fig. 8 + the §VII-A success rate)."""

    levels: int = 0
    agent_attempts: int = 0
    agent_successes: int = 0
    matrix_a_messages: int = 0
    protocol_messages: int = 0
    notification_messages: int = 0
    descriptor_messages: int = 0

    @property
    def success_rate(self) -> float:
        """Fraction of agent searches that found an agent (paper: ~0.8 at δ=0.05)."""
        if self.agent_attempts == 0:
            return 0.0
        return self.agent_successes / self.agent_attempts

    @property
    def total_setup_messages(self) -> int:
        return (
            self.matrix_a_messages
            + self.protocol_messages
            + self.notification_messages
            + self.descriptor_messages
        )


@dataclass
class CommunicationPattern:
    """Per-rank plans plus construction statistics for one topology+machine."""

    n: int
    ranks_per_socket: int
    ranks: list[RankPattern]
    stats: PatternStats

    def __post_init__(self) -> None:
        if len(self.ranks) != self.n:
            raise ValueError(f"expected {self.n} rank patterns, got {len(self.ranks)}")

    def __getitem__(self, rank: int) -> RankPattern:
        return self.ranks[rank]

    def total_data_messages(self) -> int:
        """Messages per allgather call under this pattern (all ranks)."""
        total = 0
        for rp in self.ranks:
            total += rp.halving_sends + len(rp.final_sends)
        return total
