"""The paper's Distance Halving neighborhood allgather.

Module map (mirroring the paper's Section VI):

* :mod:`matrix_a` — candidate agents/origins and Matrix A (Fig. 3).
* :mod:`negotiation` — the distributed agent/origin selection protocol
  (Algorithms 2 and 3: REQ/ACCEPT/DROP/EXIT), emulated deterministically,
  plus the equivalent greedy matching used as the fast path.
* :mod:`pattern` — the communication-pattern data model (steps, agents,
  origins, descriptor ``D``, final-phase send/recv lists).
* :mod:`builder` — Algorithm 1: recursive halving, duty offloading,
  bookkeeping of ``O_on``/``O_off``/``O_org``/``I_on``.
* :mod:`operation` — Algorithm 4: the halving phase and the intra-socket
  phase as a simulator rank program.
"""

from repro.collectives.distance_halving.algorithm import DistanceHalvingAllgather
from repro.collectives.distance_halving.builder import build_patterns
from repro.collectives.distance_halving.matrix_a import adjacency_matrix, build_matrix_a
from repro.collectives.distance_halving.negotiation import (
    NegotiationOutcome,
    greedy_matching,
    protocol_matching,
)
from repro.collectives.distance_halving.pattern import (
    CommunicationPattern,
    FinalRecv,
    FinalSend,
    HalvingStep,
    PatternStats,
    RankPattern,
)

__all__ = [
    "DistanceHalvingAllgather",
    "build_patterns",
    "adjacency_matrix",
    "build_matrix_a",
    "greedy_matching",
    "protocol_matching",
    "NegotiationOutcome",
    "CommunicationPattern",
    "RankPattern",
    "HalvingStep",
    "FinalSend",
    "FinalRecv",
    "PatternStats",
]
