"""The registered Distance Halving algorithm (setup + operation glue)."""

from __future__ import annotations

import time
from typing import Generator

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.collectives.base import (
    ExecutionContext,
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    register_algorithm,
)
from repro.collectives.distance_halving.builder import build_patterns
from repro.collectives.distance_halving.operation import distance_halving_program
from repro.collectives.distance_halving.pattern import CommunicationPattern
from repro.sim.communicator import SimCommunicator
from repro.topology.graph import DistGraphTopology


@register_algorithm(
    capabilities=("schedule", "replan", "oracle", "bench"),
    label="dh",
)
class DistanceHalvingAllgather(NeighborhoodAllgatherAlgorithm):
    """Topology- and load-aware distance-halving neighborhood allgather.

    Parameters
    ----------
    selection:
        ``"greedy"`` (default, fast fixed point), ``"protocol"``
        (message-level emulation of Algorithms 2/3; identical matching,
        records control-message counts for the overhead study), or
        ``"random"`` (ablation: ignore the load-aware scores).
    stop_ranks:
        Halving stop granularity; ``None`` (default) stops at the socket
        (the paper's ``L``), ``1`` halves all the way down (ablation).
    """

    name = "distance_halving"

    def __init__(self, selection: str = "greedy", stop_ranks: int | None = None) -> None:
        super().__init__()
        self.selection = selection
        self.stop_ranks = stop_ranks
        self.pattern: CommunicationPattern | None = None

    def replan(self, survivors, delivered_state):
        """Carry selection policy and stop granularity into the shrunk
        communicator; halving patterns are rebuilt over the survivors'
        residual topology."""
        return DistanceHalvingAllgather(
            selection=self.selection, stop_ranks=self.stop_ranks
        )

    def _build(self, topology: DistGraphTopology, machine: Machine) -> SetupStats:
        start = time.perf_counter()
        self.pattern = build_patterns(
            topology, machine, selection=self.selection, stop_ranks=self.stop_ranks
        )
        wall = time.perf_counter() - start
        stats = self.pattern.stats
        # Price the setup's control messages: the negotiation dominates and
        # runs concurrently across ranks, so charge each rank its average
        # share of signals, serialized at the inter-node latency (signals
        # are tiny; bandwidth is irrelevant).
        cost = machine.params.cost(LinkClass.INTER_NODE)
        n = topology.n
        # Matrix A construction ships neighbor lists; negotiation signals,
        # notifications and descriptors are small control messages.
        list_bytes = 4.0 * topology.average_outdegree
        signal_msgs = (
            stats.protocol_messages + stats.notification_messages + stats.descriptor_messages
        )
        simulated = (2.0 / n) * (
            stats.matrix_a_messages * (cost.alpha + list_bytes / cost.beta)
            + signal_msgs * (cost.alpha + 16.0 / cost.beta)
        )
        return SetupStats(
            protocol_messages=stats.total_setup_messages,
            simulated_time=simulated,
            wall_time=wall,
            extras={
                "matrix_a_messages": stats.matrix_a_messages,
                "levels": stats.levels,
                "agent_attempts": stats.agent_attempts,
                "agent_successes": stats.agent_successes,
                "agent_success_rate": stats.success_rate,
                "negotiation_messages": stats.protocol_messages,
                "notification_messages": stats.notification_messages,
                "descriptor_messages": stats.descriptor_messages,
                "data_messages_per_call": self.pattern.total_data_messages(),
            },
        )

    def program(self, comm: SimCommunicator, ctx: ExecutionContext) -> Generator | None:
        self.require_setup()
        assert self.pattern is not None
        return distance_halving_program(comm, ctx, self.pattern[comm.rank])

    def build_schedule(self, ctx: ExecutionContext):
        """Static schedule mirroring :func:`distance_halving_program`."""
        from repro.collectives.distance_halving.operation import FINAL_TAG
        from repro.sim.schedule import Schedule

        self.require_setup()
        assert self.pattern is not None
        n = ctx.topology.n
        all_ops: list[list[tuple] | None] = []
        deliveries: list[list[int]] = []
        for rank in range(n):
            rp = self.pattern[rank]
            my_size = ctx.size_of(rank)
            ops: list[tuple] = []
            dels: list[int] = []
            if rp.self_copy:
                ops.append(("charge", my_size))
                dels.append(rank)
            ops.append(("charge", my_size))  # Line 3: copy sbuf into main_buf
            buf_bytes = my_size
            for step in rp.steps:
                n_reqs = 0
                if step.agent is not None:
                    ops.append(("send", step.agent, buf_bytes, step.index))
                    n_reqs += 1
                if step.origin is not None:
                    ops.append(("recv", step.origin, step.index))
                    n_reqs += 1
                if not n_reqs:
                    continue
                ops.append(("wait",))
                if step.origin is not None:
                    recv_bytes = ctx.sizes_of(step.recv_blocks)
                    ops.append(("charge", recv_bytes))  # append into main_buf
                    buf_bytes += recv_bytes
                    if step.recv_for_me:
                        dels.extend(step.recv_for_me)
                        ops.append(("charge", ctx.sizes_of(step.recv_for_me)))
            if rp.final_sends or rp.final_recvs:
                for fs in rp.final_sends:
                    nbytes = ctx.sizes_of(fs.blocks)
                    ops.append(("charge", nbytes))  # pack into temp buffer
                    ops.append(("send", fs.target, nbytes, FINAL_TAG))
                for fr in rp.final_recvs:
                    ops.append(("recv", fr.sender, FINAL_TAG))
                ops.append(("wait",))
                for fr in rp.final_recvs:
                    ops.append(("charge", ctx.sizes_of(fr.blocks)))
                    dels.extend(fr.blocks)
            all_ops.append(ops)
            deliveries.append(dels)
        return Schedule(n, all_ops, deliveries)
