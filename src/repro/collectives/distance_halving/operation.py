"""Algorithm 4: executing ``MPI_Neighbor_allgather`` from a built pattern.

The program interprets a :class:`RankPattern`: per halving step it forwards
its ``main_buf`` to the step's agent while receiving (and appending) the
origin's buffer, copying any blocks destined to itself into the receive
buffer; the final intra-socket phase packs per-target combined messages and
drains the expected final receives.

Payloads travel as tuples of ``(source_rank, payload)`` blocks so block
identity is verifiable end-to-end; byte counts use the pattern's block
arithmetic (``blocks * m``).  Memory-copy costs — the buffer staging the
paper blames for the large-message decline — are charged to the rank's
clock at every pack/append/rbuf copy.
"""

from __future__ import annotations

from typing import Generator

from repro.collectives.base import ExecutionContext
from repro.collectives.distance_halving.pattern import RankPattern
from repro.sim.communicator import SimCommunicator

#: Tag for final (intra-socket / leftover direct) phase messages; halving
#: steps use their level index as the tag.
FINAL_TAG = 1 << 20


def distance_halving_program(
    comm: SimCommunicator, ctx: ExecutionContext, rp: RankPattern
) -> Generator:
    rank = comm.rank
    my_size = ctx.size_of(rank)
    results = ctx.results[rank]
    payload = ctx.payloads[rank]

    if rp.self_copy:
        comm.charge_memcpy(my_size)
        results[rank] = payload

    # Line 3: copy sbuf into main_buf.
    comm.charge_memcpy(my_size)
    buf: list[tuple[int, object]] = [(rank, payload)]
    buf_bytes = my_size

    # ---------------------------------------------------------- halving phase
    for step in rp.steps:
        reqs = []
        rreq = None
        if step.agent is not None:
            if len(buf) != step.send_block_count:
                raise AssertionError(
                    f"rank {rank} step {step.index}: buffer has {len(buf)} blocks, "
                    f"pattern says {step.send_block_count}"
                )
            reqs.append(
                comm.isend(step.agent, buf_bytes, tag=step.index, payload=tuple(buf))
            )
        if step.origin is not None:
            rreq = comm.irecv(step.origin, tag=step.index)
            reqs.append(rreq)
        if not reqs:
            continue
        yield comm.waitall(reqs)

        if rreq is not None:
            incoming: tuple[tuple[int, object], ...] = rreq.payload
            expected_bytes = ctx.sizes_of(step.recv_blocks)
            if rreq.nbytes != expected_bytes:
                raise AssertionError(
                    f"rank {rank} step {step.index}: received {rreq.nbytes} bytes "
                    f"from {step.origin}, expected {expected_bytes}"
                )
            comm.charge_memcpy(rreq.nbytes)  # append into main_buf (Line 8)
            buf.extend(incoming)
            buf_bytes += rreq.nbytes
            if step.recv_for_me:
                lookup: dict[int, object] = {}
                for src, pay in incoming:
                    lookup.setdefault(src, pay)
                for src in step.recv_for_me:  # Lines 15-17: copy to rbuf
                    results[src] = lookup[src]
                comm.charge_memcpy(ctx.sizes_of(step.recv_for_me))

    # ------------------------------------------------------ intra-socket phase
    if not rp.final_sends and not rp.final_recvs:
        return
    block_payload: dict[int, object] = {}
    for src, pay in buf:
        block_payload.setdefault(src, pay)

    send_reqs = []
    for fs in rp.final_sends:  # Lines 21-28: pack into temp buffer, send
        nbytes = ctx.sizes_of(fs.blocks)
        comm.charge_memcpy(nbytes)
        out_payload = tuple((src, block_payload[src]) for src in fs.blocks)
        send_reqs.append(comm.isend(fs.target, nbytes, tag=FINAL_TAG, payload=out_payload))
    recv_reqs = [comm.irecv(fr.sender, tag=FINAL_TAG) for fr in rp.final_recvs]
    yield comm.waitall(send_reqs + recv_reqs)

    for fr, rq in zip(rp.final_recvs, recv_reqs):  # Line 33: copy to rbuf
        expected = ctx.sizes_of(fr.blocks)
        if rq.nbytes != expected:
            raise AssertionError(
                f"rank {rank} final phase: received {rq.nbytes} bytes from "
                f"{fr.sender}, expected {expected}"
            )
        comm.charge_memcpy(rq.nbytes)
        for src, pay in rq.payload:
            results[src] = pay
