"""Algorithm 1: building the Distance Halving communication pattern.

The builder runs the recursive halving for *all* ranks in lockstep levels.
At level ``t`` every rank interval larger than ``L`` (ranks per socket)
splits around its midpoint; within each split two matching rounds run —
lower ranks select agents among upper ranks, then vice versa — using the
shared-outgoing-neighbor scores of Matrix A.  Matched pairs exchange duty
descriptors ``D`` (which delivery obligations move to the agent), exactly
as Algorithm 1's Lines 25-49.

State per rank (the paper's variables):

* ``duties[r][src]`` — targets rank ``r`` must still deliver ``src``'s block
  to.  ``duties[r][r]`` starts as ``O_r``; entries for other sources are
  the union of received descriptors (the paper's ``O_org``).  ``O_on`` of
  the paper is ``duties[r][r]``; ``O_off`` is what a transfer removes.
* ``blocks[r]`` — ordered contents of ``main_buf`` in ``m``-byte blocks
  (source rank per block; duplicates possible since buffers are forwarded
  wholesale).

The delivery invariant — every topology edge is delivered exactly once,
either to an agent that is itself the target (during halving) or in the
final phase — is checked by :func:`check_pattern` and property-tested.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.machine import Machine
from repro.collectives.distance_halving.matrix_a import adjacency_matrix
from repro.collectives.distance_halving.negotiation import (
    NegotiationOutcome,
    greedy_matching,
    protocol_matching,
    random_matching,
)
from repro.collectives.distance_halving.pattern import (
    CommunicationPattern,
    FinalRecv,
    FinalSend,
    HalvingStep,
    PatternStats,
    RankPattern,
)
from repro.topology.graph import DistGraphTopology

_SELECTIONS = ("greedy", "protocol", "random")


def build_patterns(
    topology: DistGraphTopology,
    machine: Machine,
    selection: str = "greedy",
    stop_ranks: int | None = None,
    seed: int = 0,
    record_pairs: bool = False,
) -> CommunicationPattern:
    """Build the Distance Halving pattern for every rank.

    Parameters
    ----------
    topology, machine:
        The virtual topology and the machine (only ``ranks_per_socket`` and
        the communicator size matter for the pattern itself).
    selection:
        ``"greedy"`` computes the protocol's fixed point directly (fast
        path); ``"protocol"`` emulates the REQ/ACCEPT/DROP/EXIT signal
        exchange message-by-message and records signal counts in the stats
        (used for the Fig. 8 overhead study) — both produce identical
        matchings.  ``"random"`` is the ablation baseline that ignores the
        load-aware shared-neighbor scores.
    stop_ranks:
        Halving stops when intervals reach this many ranks; defaults to the
        machine's ranks-per-socket ``L`` (the paper's choice).  ``1`` halves
        all the way down — the ablation for the socket-granularity stop.
    seed:
        RNG seed for ``selection="random"``.
    record_pairs:
        Also record the exact (source, target) duty pairs moved in every
        step (``HalvingStep.send_pairs``/``recv_pairs``) — required by the
        alltoall variant, skipped by default to keep allgather patterns
        lean.
    """
    if selection not in _SELECTIONS:
        raise ValueError(f"selection must be one of {_SELECTIONS}, got {selection!r}")
    n = topology.n
    L = machine.spec.ranks_per_socket if stop_ranks is None else stop_ranks
    if L < 1:
        raise ValueError(f"stop_ranks must be >= 1, got {L}")
    rng = np.random.default_rng(seed)
    stats = PatternStats()

    adj = adjacency_matrix(topology)
    adj_f32 = adj.astype(np.float32)
    # calculate_A (Algorithm 1, line 4): every rank learns every other
    # rank's outgoing-neighbor list — an all-to-all of neighbor lists.
    stats.matrix_a_messages = n * (n - 1)

    patterns = [RankPattern(rank=r) for r in range(n)]
    duties: list[dict[int, set[int]]] = []
    blocks: list[list[int]] = []
    for r in range(n):
        out = set(topology.out_neighbors(r))
        if r in out:
            patterns[r].self_copy = True
            out.discard(r)
        duties.append({r: out} if out else {})
        blocks.append([r])

    intervals: list[tuple[int, int]] = [(0, n)]  # half-open [lo, hi)
    t = 0
    while any(hi - lo > L for lo, hi in intervals):
        next_intervals: list[tuple[int, int]] = []
        # (giver, agent, giver_h2) transfers at this level, snapshot-consistent.
        transfers: list[tuple[int, int, tuple[int, int]]] = []
        agents_of: dict[int, int] = {}
        origins_of: dict[int, int] = {}

        for lo, hi in intervals:
            if hi - lo <= L:
                continue  # this interval reached socket granularity earlier
            mid = (lo + hi - 1) // 2  # paper's mid_rank (inclusive midpoint)
            lower, upper = (lo, mid + 1), (mid + 1, hi)
            next_intervals.extend((lower, upper))

            m1 = _match_round(adj_f32, lower, upper, upper, selection, stats, rng)
            m2 = _match_round(adj_f32, upper, lower, lower, selection, stats, rng)
            stats.agent_successes += len(m1) + len(m2)
            _count_attempts(adj, lower, upper, stats)
            _count_attempts(adj, upper, lower, stats)

            for searcher, agent in m1.items():
                agents_of[searcher] = agent
                origins_of[agent] = searcher
                transfers.append((searcher, agent, upper))
            for searcher, agent in m2.items():
                agents_of[searcher] = agent
                origins_of[agent] = searcher
                transfers.append((searcher, agent, lower))

        # ---- snapshot-consistent descriptor computation (Lines 31-49) ----
        descriptors: dict[int, dict[int, set[int]]] = {}
        sent_blocks: dict[int, tuple[int, ...]] = {}
        for giver, agent, (h2_lo, h2_hi) in transfers:
            d: dict[int, set[int]] = {}
            for src, targets in duties[giver].items():
                moved = {v for v in targets if h2_lo <= v < h2_hi}
                if moved:
                    d[src] = moved
            descriptors[giver] = d
            sent_blocks[giver] = tuple(blocks[giver])
            stats.descriptor_messages += 1
            # Line 30: notify outgoing neighbors in h2 about the new agent.
            stats.notification_messages += int(
                np.count_nonzero(adj[giver, h2_lo:h2_hi])
            )

        # ---- record steps for every participating rank --------------------
        pair_lists: dict[int, tuple[tuple[int, int], ...]] = {}
        if record_pairs:
            for giver in descriptors:
                pair_lists[giver] = tuple(
                    (src, tgt)
                    for src in sorted(descriptors[giver])
                    for tgt in sorted(descriptors[giver][src])
                )

        touched = set(agents_of) | set(origins_of)
        for r in sorted(touched):
            agent = agents_of.get(r)
            origin = origins_of.get(r)
            recv_blocks: tuple[int, ...] = ()
            recv_for_me: tuple[int, ...] = ()
            if origin is not None:
                recv_blocks = sent_blocks[origin]
                d_in = descriptors[origin]
                seen: set[int] = set()
                for_me = []
                for src in recv_blocks:
                    if src not in seen and r in d_in.get(src, ()):
                        for_me.append(src)
                        seen.add(src)
                recv_for_me = tuple(for_me)
            patterns[r].steps.append(
                HalvingStep(
                    index=t,
                    agent=agent,
                    origin=origin,
                    send_block_count=len(sent_blocks[r]) if agent is not None else 0,
                    recv_blocks=recv_blocks,
                    recv_for_me=recv_for_me,
                    send_pairs=pair_lists.get(r) if agent is not None else None,
                    recv_pairs=pair_lists.get(origin) if origin is not None else None,
                )
            )

        # ---- apply removals, then merges ----------------------------------
        for giver, agent, _ in transfers:
            d = descriptors[giver]
            my_duties = duties[giver]
            for src, moved in d.items():
                remaining = my_duties[src] - moved
                if remaining:
                    my_duties[src] = remaining
                else:
                    del my_duties[src]
        for giver, agent, _ in transfers:
            d = descriptors[giver]
            agent_duties = duties[agent]
            for src, moved in d.items():
                pending = moved - {agent}  # agent-as-target delivered on receive
                if pending:
                    existing = agent_duties.get(src)
                    if existing is None:
                        agent_duties[src] = set(pending)
                    else:
                        existing |= pending
            blocks[agent].extend(sent_blocks[giver])

        intervals = next_intervals
        t += 1

    stats.levels = t
    _build_final_phase(patterns, duties, blocks)
    return CommunicationPattern(n=n, ranks_per_socket=L, ranks=patterns, stats=stats)


def _match_round(
    adj_f32: np.ndarray,
    searcher_iv: tuple[int, int],
    acceptor_iv: tuple[int, int],
    half_iv: tuple[int, int],
    selection: str,
    stats: PatternStats,
    rng: np.random.Generator,
) -> dict[int, int]:
    """One matching round: searchers pick agents among acceptors.

    ``half_iv`` is the opposite half the shared-outgoing-neighbor scores
    are restricted to (equal to ``acceptor_iv`` — agents always live in the
    searcher's ``h2``).
    """
    s_lo, s_hi = searcher_iv
    a_lo, a_hi = acceptor_iv
    h_lo, h_hi = half_iv
    scores = adj_f32[s_lo:s_hi, h_lo:h_hi] @ adj_f32[a_lo:a_hi, h_lo:h_hi].T
    searchers = list(range(s_lo, s_hi))
    acceptors = list(range(a_lo, a_hi))
    if selection == "protocol":
        outcome: NegotiationOutcome = protocol_matching(searchers, acceptors, scores)
        stats.protocol_messages += outcome.total_messages
        return outcome.matching
    if selection == "random":
        return random_matching(searchers, acceptors, scores, rng)
    return greedy_matching(searchers, acceptors, scores)


def _count_attempts(
    adj: np.ndarray,
    searcher_iv: tuple[int, int],
    h2_iv: tuple[int, int],
    stats: PatternStats,
) -> None:
    """Count ranks that *needed* an agent this round (own targets in h2)."""
    s_lo, s_hi = searcher_iv
    h_lo, h_hi = h2_iv
    stats.agent_attempts += int(adj[s_lo:s_hi, h_lo:h_hi].any(axis=1).sum())


def _build_final_phase(
    patterns: list[RankPattern],
    duties: list[dict[int, set[int]]],
    blocks: list[list[int]],
) -> None:
    """Turn remaining duties into final-phase send/recv lists (Lines 19-33 of
    Algorithm 4): one combined message per (deliverer, target) pair."""
    recvs: dict[int, list[FinalRecv]] = defaultdict(list)
    for c, my_duties in enumerate(duties):
        if not my_duties:
            continue
        order_index: dict[int, int] = {}
        for i, src in enumerate(blocks[c]):
            order_index.setdefault(src, i)
        tmap: dict[int, list[int]] = defaultdict(list)
        for src in sorted(my_duties, key=order_index.__getitem__):
            for v in my_duties[src]:
                tmap[v].append(src)
        for v in sorted(tmap):
            fs = FinalSend(target=v, blocks=tuple(tmap[v]))
            patterns[c].final_sends.append(fs)
            recvs[v].append(FinalRecv(sender=c, blocks=fs.blocks))
    for v, lst in recvs.items():
        patterns[v].final_recvs = sorted(lst, key=lambda fr: fr.sender)


def check_pattern(topology: DistGraphTopology, pattern: CommunicationPattern) -> None:
    """Assert the exactly-once delivery invariant and buffer consistency.

    Every topology edge ``(u, v)`` must be delivered to ``v`` exactly once:
    as a self-loop local copy, via ``recv_for_me`` during halving, or in a
    final-phase message.  Raises :class:`AssertionError` otherwise.
    """
    deliveries: dict[tuple[int, int], int] = defaultdict(int)
    for rp in pattern.ranks:
        if rp.self_copy:
            deliveries[(rp.rank, rp.rank)] += 1
        for step in rp.steps:
            for src in step.recv_for_me:
                deliveries[(src, rp.rank)] += 1
        for fr in rp.final_recvs:
            for src in fr.blocks:
                deliveries[(src, rp.rank)] += 1

    expected = set(topology.edges())
    got = set(deliveries)
    missing = expected - got
    extra = got - expected
    if missing:
        raise AssertionError(f"edges never delivered: {sorted(missing)[:10]} ...")
    if extra:
        raise AssertionError(f"deliveries for non-edges: {sorted(extra)[:10]} ...")
    dupes = {e: c for e, c in deliveries.items() if c != 1}
    if dupes:
        raise AssertionError(f"edges delivered more than once: {dict(list(dupes.items())[:10])}")

    # Send/recv lists must mirror each other.
    sends = {
        (rp.rank, fs.target, fs.blocks) for rp in pattern.ranks for fs in rp.final_sends
    }
    recvs = {
        (fr.sender, rp.rank, fr.blocks) for rp in pattern.ranks for fr in rp.final_recvs
    }
    if sends != recvs:
        raise AssertionError(
            f"final-phase send/recv mismatch: only-sends={list(sends - recvs)[:5]}, "
            f"only-recvs={list(recvs - sends)[:5]}"
        )
