"""Neighborhood alltoall — the paper's stated future work (Section VIII).

``MPI_Neighbor_alltoall`` sends a *distinct* block to every outgoing
neighbor.  Two implementations:

* :class:`NaiveAlltoall` — one point-to-point message per edge (the default
  MPI behaviour, identical schedule to the naive allgather).
* :class:`DistanceHalvingAlltoall` — the paper's halving/agent machinery
  adapted to distinct blocks.  The communication pattern (agents, origins,
  duty transfers) is exactly the allgather pattern built with
  ``record_pairs=True``; the difference is payload handling: a carrier
  forwards *only the pending duty blocks* (allgather forwards its whole
  accumulated buffer because every target wants every block), so message
  sizes equal the number of moved (source, target) pairs times ``m`` and
  total moved bytes are bounded by ``levels x edges``, while the message
  *count* drops from ``degree`` to ``O(log n + L)`` per rank exactly as in
  the allgather case.

Use :func:`run_alltoall` / :func:`verify_alltoall`; payload identity is the
``(source, target)`` pair, so misrouted blocks are always caught.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.cluster.machine import Machine
from repro.collectives.distance_halving.builder import build_patterns
from repro.collectives.distance_halving.operation import FINAL_TAG
from repro.collectives.distance_halving.pattern import CommunicationPattern
from repro.sim.engine import Engine
from repro.sim.tracing import TraceCollector
from repro.topology.graph import DistGraphTopology
from repro.utils.sizes import parse_size

#: Payload factory signature: ``payload_fn(src, dst) -> Any``.
PayloadFn = Callable[[int, int], Any]
#: Per-pair block size signature: ``pair_sizes(src, dst) -> bytes``
#: (the alltoallv generalization; constant for plain alltoall).
PairSizeFn = Callable[[int, int], int]

_A2A_TAG = 0


@dataclass
class AlltoallRun:
    """Outcome of one simulated ``MPI_Neighbor_alltoall``."""

    algorithm: str
    msg_size: int
    simulated_time: float
    finish_times: dict[int, float]
    messages_sent: int
    bytes_sent: int
    results: list[dict[int, Any]] = field(repr=False, default_factory=list)
    trace: TraceCollector | None = field(repr=False, default=None)
    setup_wall_time: float = 0.0


class NaiveAlltoall:
    """Direct per-edge isend/irecv, as mainstream MPI libraries do."""

    name = "naive_alltoall"

    def setup(self, topology: DistGraphTopology, machine: Machine) -> None:
        return None

    def make_program(self, rank, topology, psize, payload_fn, results):
        out_nbrs = topology.out_neighbors(rank)
        in_nbrs = topology.in_neighbors(rank)
        if not out_nbrs and not in_nbrs:
            return lambda comm: None

        def program(comm):
            recv_reqs = [comm.irecv(src, tag=_A2A_TAG) for src in in_nbrs if src != rank]
            send_reqs = [
                comm.isend(dst, psize(rank, dst), tag=_A2A_TAG, payload=payload_fn(rank, dst))
                for dst in out_nbrs
                if dst != rank
            ]
            if rank in out_nbrs:
                comm.charge_memcpy(psize(rank, rank))
                results[rank][rank] = payload_fn(rank, rank)
            if recv_reqs or send_reqs:
                yield comm.waitall(recv_reqs + send_reqs)
            for req in recv_reqs:
                results[rank][req.source] = req.payload

        return program


class DistanceHalvingAlltoall:
    """Distance-halving alltoall: same agents, distinct per-target blocks."""

    name = "distance_halving_alltoall"

    def __init__(self, selection: str = "greedy", stop_ranks: int | None = None) -> None:
        self.selection = selection
        self.stop_ranks = stop_ranks
        self.pattern: CommunicationPattern | None = None
        self._key: tuple[int, int] | None = None

    def setup(self, topology: DistGraphTopology, machine: Machine) -> None:
        key = (id(topology), id(machine))
        if self._key == key and self.pattern is not None:
            return
        self.pattern = build_patterns(
            topology,
            machine,
            selection=self.selection,
            stop_ranks=self.stop_ranks,
            record_pairs=True,
        )
        self._key = key

    def make_program(self, rank, topology, psize, payload_fn, results):
        assert self.pattern is not None
        rp = self.pattern[rank]
        my_results = results[rank]

        def pairs_bytes(pairs) -> int:
            return sum(psize(src, tgt) for src, tgt in pairs)

        def program(comm) -> Generator:
            # Pending duty blocks this rank still carries: (src, tgt) -> payload.
            store: dict[tuple[int, int], Any] = {
                (rank, v): payload_fn(rank, v)
                for v in topology.out_neighbors(rank)
                if v != rank
            }
            comm.charge_memcpy(pairs_bytes(store))  # stage sbuf blocks
            if rp.self_copy:
                comm.charge_memcpy(psize(rank, rank))
                my_results[rank] = payload_fn(rank, rank)

            for step in rp.steps:
                reqs = []
                rreq = None
                if step.agent is not None:
                    pairs = step.send_pairs or ()
                    out_payload = tuple((pair, store.pop(pair)) for pair in pairs)
                    reqs.append(
                        comm.isend(
                            step.agent, pairs_bytes(pairs), tag=step.index,
                            payload=out_payload,
                        )
                    )
                if step.origin is not None:
                    rreq = comm.irecv(step.origin, tag=step.index)
                    reqs.append(rreq)
                if not reqs:
                    continue
                yield comm.waitall(reqs)

                if rreq is not None:
                    expected = pairs_bytes(step.recv_pairs or ())
                    if rreq.nbytes != expected:
                        raise AssertionError(
                            f"rank {rank} step {step.index}: got {rreq.nbytes} bytes, "
                            f"expected {expected}"
                        )
                    comm.charge_memcpy(rreq.nbytes)
                    for (src, tgt), pay in rreq.payload:
                        if tgt == rank:
                            my_results[src] = pay
                        else:
                            store[(src, tgt)] = pay

            # Final phase: pending duties, one combined message per target.
            if not rp.final_sends and not rp.final_recvs:
                if store:
                    raise AssertionError(f"rank {rank}: undelivered duties {list(store)[:5]}")
                return
            send_reqs = []
            for fs in rp.final_sends:
                nbytes = pairs_bytes((src, fs.target) for src in fs.blocks)
                comm.charge_memcpy(nbytes)
                out_payload = tuple(
                    ((src, fs.target), store.pop((src, fs.target))) for src in fs.blocks
                )
                send_reqs.append(
                    comm.isend(fs.target, nbytes, tag=FINAL_TAG, payload=out_payload)
                )
            recv_reqs = [comm.irecv(fr.sender, tag=FINAL_TAG) for fr in rp.final_recvs]
            if store:
                raise AssertionError(f"rank {rank}: undelivered duties {list(store)[:5]}")
            yield comm.waitall(send_reqs + recv_reqs)
            for fr, rq in zip(rp.final_recvs, recv_reqs):
                comm.charge_memcpy(rq.nbytes)
                for (src, tgt), pay in rq.payload:
                    if tgt != rank:
                        raise AssertionError(
                            f"rank {rank}: received block destined to {tgt}"
                        )
                    my_results[src] = pay

        return program


class CommonNeighborAlltoall:
    """Common Neighbor message combining adapted to distinct blocks.

    The group/assignee structure is exactly the allgather plan; the only
    change is payload routing: in phase 1 a member ships the assignee the
    *distinct* blocks of the targets it covers (message size scales with
    the number of covered targets), and phase 2 combines per-target blocks
    from all group members into one message as before.
    """

    name = "common_neighbor_alltoall"

    def __init__(self, k: int = 4) -> None:
        from repro.collectives.common_neighbor import CommonNeighborAllgather

        self._inner = CommonNeighborAllgather(k=k)
        self.k = k
        #: (g -> a) phase-1 pair -> targets whose (g, target) block moves.
        self._pair_targets: dict[tuple[int, int], tuple[int, ...]] | None = None

    def setup(self, topology: DistGraphTopology, machine: Machine) -> None:
        self._inner.setup(topology, machine)
        plans = self._inner.plans
        assert plans is not None
        pair_targets: dict[tuple[int, int], tuple[int, ...]] = {}
        for g, plan in enumerate(plans):
            for a in plan.phase1_sends:
                targets = [
                    v for v, blocks in plans[a].phase2_sends if g in blocks
                ]
                if g in plans[a].phase1_for_me:
                    targets.append(a)  # the assignee is itself a target of g
                pair_targets[(g, a)] = tuple(sorted(targets))
        self._pair_targets = pair_targets

    def make_program(self, rank, topology, psize, payload_fn, results):
        assert self._inner.plans is not None and self._pair_targets is not None
        plan = self._inner.plans[rank]
        pair_targets = self._pair_targets
        my_results = results[rank]

        def program(comm) -> Generator:
            if plan.self_copy:
                comm.charge_memcpy(psize(rank, rank))
                my_results[rank] = payload_fn(rank, rank)

            # Phase 1: ship each assignee the distinct blocks it covers.
            p1_recv = [comm.irecv(src, tag=1) for src in plan.phase1_recvs]
            p1_send = []
            for a in plan.phase1_sends:
                targets = pair_targets[(rank, a)]
                out = tuple(((rank, v), payload_fn(rank, v)) for v in targets)
                nbytes = sum(psize(rank, v) for v in targets)
                comm.charge_memcpy(nbytes)
                p1_send.append(comm.isend(a, nbytes, tag=1, payload=out))
            if p1_recv or p1_send:
                yield comm.waitall(p1_recv + p1_send)

            store: dict[tuple[int, int], Any] = {}
            for req in p1_recv:
                comm.charge_memcpy(req.nbytes)
                for (src, tgt), pay in req.payload:
                    if tgt == rank:
                        my_results[src] = pay
                    else:
                        store[(src, tgt)] = pay

            # Phase 2: combined per-target messages.
            p2_send = []
            for target, blocks in plan.phase2_sends:
                out = []
                for src in blocks:
                    if src == rank:
                        out.append(((rank, target), payload_fn(rank, target)))
                    else:
                        out.append(((src, target), store.pop((src, target))))
                nbytes = sum(psize(src, target) for src in blocks)
                comm.charge_memcpy(nbytes)
                p2_send.append(comm.isend(target, nbytes, tag=2, payload=tuple(out)))
            p2_recv = [comm.irecv(sender, tag=2) for sender, _ in plan.phase2_recvs]
            if p2_send or p2_recv:
                yield comm.waitall(p2_send + p2_recv)
            if store:
                raise AssertionError(f"rank {rank}: unforwarded blocks {list(store)[:5]}")
            for req in p2_recv:
                comm.charge_memcpy(req.nbytes)
                for (src, tgt), pay in req.payload:
                    if tgt != rank:
                        raise AssertionError(f"rank {rank}: got block for {tgt}")
                    my_results[src] = pay

        return program


_ALLTOALL = {
    "naive_alltoall": NaiveAlltoall,
    "common_neighbor_alltoall": CommonNeighborAlltoall,
    "distance_halving_alltoall": DistanceHalvingAlltoall,
}


def alltoall_algorithms() -> tuple[str, ...]:
    return tuple(sorted(_ALLTOALL))


def run_alltoall(
    algorithm: str | NaiveAlltoall | CommonNeighborAlltoall | DistanceHalvingAlltoall,
    topology: DistGraphTopology,
    machine: Machine,
    msg_size: int | str,
    *,
    payload_fn: PayloadFn | None = None,
    pair_sizes: PairSizeFn | None = None,
    trace: bool = False,
    **algorithm_kwargs,
) -> AlltoallRun:
    """Simulate one neighborhood alltoall; see :func:`run_allgather` for the
    parameter conventions.  ``payload_fn(src, dst)`` defaults to the
    ``(src, dst)`` tuple so delivery is identity-checkable.

    ``pair_sizes(src, dst)`` selects alltoallv semantics — a distinct byte
    count per (source, target) pair; ``msg_size`` then only seeds the
    reported default.  All implementations handle variable pair sizes
    natively (byte arithmetic is per pair throughout).
    """
    if isinstance(algorithm, str):
        try:
            algorithm = _ALLTOALL[algorithm](**algorithm_kwargs)
        except KeyError:
            raise KeyError(
                f"unknown alltoall algorithm {algorithm!r}; available: {alltoall_algorithms()}"
            ) from None
    elif algorithm_kwargs:
        raise ValueError("algorithm_kwargs only apply when algorithm is a name")
    msg_size = parse_size(msg_size)
    if payload_fn is None:
        payload_fn = lambda src, dst: (src, dst)  # noqa: E731
    psize: PairSizeFn = pair_sizes if pair_sizes is not None else (lambda u, v: msg_size)

    wall = time.perf_counter()
    algorithm.setup(topology, machine)
    setup_wall = time.perf_counter() - wall

    results: list[dict[int, Any]] = [{} for _ in range(topology.n)]
    collector = TraceCollector(keep_records=trace) if trace else None
    engine = Engine(n_ranks=topology.n, machine=machine, trace=collector)
    for rank in range(topology.n):
        engine.spawn(
            rank, algorithm.make_program(rank, topology, psize, payload_fn, results)
        )
    simulated = engine.run()
    return AlltoallRun(
        algorithm=algorithm.name,
        msg_size=msg_size,
        simulated_time=simulated,
        finish_times=engine.finish_times(),
        messages_sent=engine.messages_sent,
        bytes_sent=engine.bytes_sent,
        results=results,
        trace=collector,
        setup_wall_time=setup_wall,
    )


def verify_alltoall(
    topology: DistGraphTopology, run: AlltoallRun, payload_fn: PayloadFn | None = None
) -> None:
    """Assert the alltoall post-condition: rank ``v`` received exactly block
    ``payload_fn(u, v)`` from every incoming neighbor ``u``."""
    if payload_fn is None:
        payload_fn = lambda src, dst: (src, dst)  # noqa: E731
    for v in range(topology.n):
        expected = set(topology.in_neighbors(v))
        got = set(run.results[v])
        if expected != got:
            raise AssertionError(
                f"[{run.algorithm}] rank {v}: missing={sorted(expected - got)}, "
                f"extra={sorted(got - expected)}"
            )
        for u in expected:
            if run.results[v][u] != payload_fn(u, v):
                raise AssertionError(
                    f"[{run.algorithm}] rank {v}: block from {u} is "
                    f"{run.results[v][u]!r}, expected {payload_fn(u, v)!r}"
                )
