"""Machine model: rank placement, link distance classes, network topologies.

This subpackage is the stand-in for the paper's Niagara cluster (2024 nodes,
2 sockets x 20 cores per node, Dragonfly+ over EDR InfiniBand).  It answers
two questions for the simulator and the analytic model:

1. *Where does a rank live?*  (:class:`ClusterSpec` — node / socket / core)
2. *What does it cost to move bytes between two ranks?*
   (:class:`HockneyParameters` per :class:`LinkClass`, a
   :class:`NetworkTopology` that classifies node pairs and exposes shared
   bottleneck resources, and the :class:`Machine` bundle of all three.)
"""

from repro.cluster.calibration import (
    DEFAULT_PING_PONG_SIZES,
    HockneyFit,
    calibrate,
    fit_hockney,
    simulated_ping_pong,
)
from repro.cluster.hockney import NIAGARA_LIKE, HockneyParameters, LinkCost
from repro.cluster.machine import Machine
from repro.cluster.network import (
    DragonflyPlus,
    FatTree,
    NetworkTopology,
    PermutedNodes,
    SingleSwitch,
    Torus,
)
from repro.cluster.spec import ClusterSpec, LinkClass

__all__ = [
    "ClusterSpec",
    "LinkClass",
    "HockneyParameters",
    "LinkCost",
    "NIAGARA_LIKE",
    "Machine",
    "NetworkTopology",
    "PermutedNodes",
    "SingleSwitch",
    "DragonflyPlus",
    "FatTree",
    "Torus",
    "HockneyFit",
    "calibrate",
    "fit_hockney",
    "simulated_ping_pong",
    "DEFAULT_PING_PONG_SIZES",
]
