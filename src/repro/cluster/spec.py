"""Cluster shape and rank placement.

Ranks are placed *block-wise*, exactly as ``mpiexec --map-by core`` does on
the paper's testbed: consecutive ranks fill a socket, then the next socket
of the same node, then the next node.  This placement is what makes the
distance-halving recursion meaningful — the final halving level of the rank
interval coincides with a socket.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.validation import check_positive


class LinkClass(enum.Enum):
    """Distance class of a rank pair, ordered from cheapest to priciest."""

    SELF = 0          #: same rank (pure memory copy)
    INTRA_SOCKET = 1  #: same socket, shared-memory transport
    INTER_SOCKET = 2  #: same node, across the socket interconnect
    INTER_NODE = 3    #: different nodes, short network path
    INTER_GROUP = 4   #: different nodes across a network bottleneck (global link)

    def __lt__(self, other: "LinkClass") -> bool:
        if not isinstance(other, LinkClass):
            return NotImplemented
        return self.value < other.value


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the machine: ``nodes`` x ``sockets_per_node`` x ``ranks_per_socket``.

    Attributes
    ----------
    nodes:
        Number of compute nodes.
    sockets_per_node:
        Sockets per node (``S`` in the paper; Niagara has 2).
    ranks_per_socket:
        Ranks bound to each socket (``L`` in the paper; Niagara runs 18-20).
    """

    nodes: int
    sockets_per_node: int = 2
    ranks_per_socket: int = 18

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_positive("sockets_per_node", self.sockets_per_node)
        check_positive("ranks_per_socket", self.ranks_per_socket)

    # ------------------------------------------------------------------ shape
    @property
    def ranks_per_node(self) -> int:
        return self.sockets_per_node * self.ranks_per_socket

    @property
    def n_ranks(self) -> int:
        """Total communicator size ``n``."""
        return self.nodes * self.ranks_per_node

    @property
    def n_sockets(self) -> int:
        return self.nodes * self.sockets_per_node

    # -------------------------------------------------------------- placement
    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def socket_of(self, rank: int) -> int:
        """Global socket index hosting ``rank`` (unique across the cluster)."""
        self._check_rank(rank)
        return rank // self.ranks_per_socket

    def local_socket_of(self, rank: int) -> int:
        """Socket index of ``rank`` within its node."""
        self._check_rank(rank)
        return (rank % self.ranks_per_node) // self.ranks_per_socket

    def core_of(self, rank: int) -> int:
        """Core index of ``rank`` within its socket."""
        self._check_rank(rank)
        return rank % self.ranks_per_socket

    def ranks_on_node(self, node: int) -> range:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        lo = node * self.ranks_per_node
        return range(lo, lo + self.ranks_per_node)

    def ranks_on_socket(self, socket: int) -> range:
        if not 0 <= socket < self.n_sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.n_sockets})")
        lo = socket * self.ranks_per_socket
        return range(lo, lo + self.ranks_per_socket)

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def intra_node_class(self, a: int, b: int) -> LinkClass:
        """Distance class for two ranks, ignoring the network topology.

        Node-to-node classification (``INTER_NODE`` vs ``INTER_GROUP``) is
        refined by :class:`repro.cluster.network.NetworkTopology`; this method
        returns ``INTER_NODE`` for any cross-node pair.
        """
        if a == b:
            return LinkClass.SELF
        if self.same_socket(a, b):
            return LinkClass.INTRA_SOCKET
        if self.same_node(a, b):
            return LinkClass.INTER_SOCKET
        return LinkClass.INTER_NODE

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_ranks(
        cls, n_ranks: int, sockets_per_node: int = 2, ranks_per_socket: int = 18
    ) -> "ClusterSpec":
        """Smallest cluster of the given socket shape holding ``n_ranks``.

        ``n_ranks`` must tile exactly into nodes; this mirrors the paper's
        experiments which always use full nodes (e.g. 2160 = 60 x 2 x 18).
        """
        check_positive("n_ranks", n_ranks)
        per_node = sockets_per_node * ranks_per_socket
        if n_ranks % per_node:
            raise ValueError(
                f"n_ranks={n_ranks} does not fill whole nodes of "
                f"{sockets_per_node}x{ranks_per_socket} ranks"
            )
        return cls(n_ranks // per_node, sockets_per_node, ranks_per_socket)

    def describe(self) -> str:
        return (
            f"{self.nodes} nodes x {self.sockets_per_node} sockets x "
            f"{self.ranks_per_socket} ranks = {self.n_ranks} ranks"
        )
