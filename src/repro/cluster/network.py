"""Network topologies: node-pair classification, hop counts, shared bottlenecks.

A :class:`NetworkTopology` refines the cluster's cross-node link picture:

* :meth:`~NetworkTopology.classify` says whether a node pair talks over a
  short path (``INTER_NODE``) or across a structural bottleneck
  (``INTER_GROUP`` — a Dragonfly+ global link, a fat-tree core uplink).
* :meth:`~NetworkTopology.hops` counts switch hops, which add latency.
* :meth:`~NetworkTopology.shared_link_keys` names the *shared resources* a
  message occupies, so the simulator can serialize concurrent traffic on
  them.  This is where the congestion that motivates the paper (Section IV)
  comes from: reducing traffic to distant nodes reduces waiting on exactly
  these resources.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable, Sequence

from repro.cluster.spec import LinkClass
from repro.utils.validation import check_positive


class NetworkTopology(abc.ABC):
    """Classifies node pairs; all methods must be symmetric in (a, b)."""

    @abc.abstractmethod
    def classify(self, node_a: int, node_b: int) -> LinkClass:
        """``INTER_NODE`` or ``INTER_GROUP`` for distinct nodes."""

    @abc.abstractmethod
    def hops(self, node_a: int, node_b: int) -> int:
        """Switch hops between distinct nodes (0 for the same node)."""

    @abc.abstractmethod
    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        """Keys of shared bottleneck resources this node pair's traffic crosses.

        This is the *oblivious* (hash-routed) lane choice; adaptive routing
        uses :meth:`link_choices` instead.
        """

    def link_choices(self, node_a: int, node_b: int) -> tuple[tuple[Hashable, ...], ...]:
        """Alternative-lane groups for adaptive (UGAL-like) routing.

        Returns one *choice group* per bottleneck the path crosses; each
        group lists interchangeable resource keys, and an adaptive router
        picks the least-loaded key per group.  The default wraps each
        oblivious key in a singleton group (no routing freedom).
        """
        return tuple((key,) for key in self.shared_link_keys(node_a, node_b))

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__


class PermutedNodes(NetworkTopology):
    """A network seen through a node-placement permutation.

    Batch schedulers hand a job different physical nodes every run; the
    paper's Fig. 6 discussion attributes the default algorithm's latency
    variance to exactly this.  ``perm[i]`` is the physical node hosting
    logical node ``i``; all queries are forwarded through the mapping.
    """

    def __init__(self, base: NetworkTopology, perm: Sequence[int]) -> None:
        perm = tuple(int(p) for p in perm)
        if sorted(perm) != list(range(len(perm))):
            raise ValueError("perm must be a permutation of 0..len(perm)-1")
        self.base = base
        self.perm = perm

    def _map(self, node: int) -> int:
        if not 0 <= node < len(self.perm):
            raise ValueError(f"node {node} outside permutation of size {len(self.perm)}")
        return self.perm[node]

    def classify(self, node_a: int, node_b: int) -> LinkClass:
        return self.base.classify(self._map(node_a), self._map(node_b))

    def hops(self, node_a: int, node_b: int) -> int:
        return self.base.hops(self._map(node_a), self._map(node_b))

    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        return self.base.shared_link_keys(self._map(node_a), self._map(node_b))

    def link_choices(self, node_a: int, node_b: int) -> tuple[tuple[Hashable, ...], ...]:
        return self.base.link_choices(self._map(node_a), self._map(node_b))

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"Permuted({self.base.describe()})"


class SingleSwitch(NetworkTopology):
    """All nodes behind one full-bisection switch — the no-bottleneck baseline."""

    def classify(self, node_a: int, node_b: int) -> LinkClass:
        return LinkClass.SELF if node_a == node_b else LinkClass.INTER_NODE

    def hops(self, node_a: int, node_b: int) -> int:
        return 0 if node_a == node_b else 2

    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        return ()


class DragonflyPlus(NetworkTopology):
    """Dragonfly+ as on the paper's testbed: groups joined by global links.

    Nodes are grouped into ``nodes_per_group``-sized groups (a leaf/spine
    sub-fabric each).  Traffic within a group is cheap (``INTER_NODE``);
    traffic between groups crosses one of ``links_per_pair`` global links
    for that group pair (``INTER_GROUP``), which the simulator serializes.
    """

    def __init__(self, nodes_per_group: int, links_per_pair: int = 2) -> None:
        self.nodes_per_group = check_positive("nodes_per_group", nodes_per_group)
        self.links_per_pair = check_positive("links_per_pair", links_per_pair)

    def group_of(self, node: int) -> int:
        return node // self.nodes_per_group

    def classify(self, node_a: int, node_b: int) -> LinkClass:
        if node_a == node_b:
            return LinkClass.SELF
        if self.group_of(node_a) == self.group_of(node_b):
            return LinkClass.INTER_NODE
        return LinkClass.INTER_GROUP

    def hops(self, node_a: int, node_b: int) -> int:
        if node_a == node_b:
            return 0
        return 2 if self.group_of(node_a) == self.group_of(node_b) else 5

    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        ga, gb = self.group_of(node_a), self.group_of(node_b)
        if ga == gb:
            return ()
        lo, hi = min(ga, gb), max(ga, gb)
        # Deterministically spread node pairs over the parallel global links.
        lane = (node_a + node_b) % self.links_per_pair
        return (("global", lo, hi, lane),)

    def link_choices(self, node_a: int, node_b: int) -> tuple[tuple[Hashable, ...], ...]:
        """Adaptive routing may use any of the group pair's global links."""
        ga, gb = self.group_of(node_a), self.group_of(node_b)
        if ga == gb:
            return ()
        lo, hi = min(ga, gb), max(ga, gb)
        return (tuple(("global", lo, hi, lane) for lane in range(self.links_per_pair)),)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"DragonflyPlus(nodes_per_group={self.nodes_per_group})"


class FatTree(NetworkTopology):
    """Two-level fat tree: leaf switches with (possibly tapered) core uplinks.

    ``taper`` < 1 models the reduced bisection-to-injection bandwidth ratio
    the paper calls out for fat trees: each leaf has
    ``max(1, int(nodes_per_leaf * taper))`` uplink lanes.
    """

    def __init__(self, nodes_per_leaf: int, taper: float = 0.5) -> None:
        self.nodes_per_leaf = check_positive("nodes_per_leaf", nodes_per_leaf)
        if not 0 < taper <= 1:
            raise ValueError(f"taper must be in (0, 1], got {taper}")
        self.taper = float(taper)
        self.uplinks_per_leaf = max(1, int(nodes_per_leaf * taper))

    def leaf_of(self, node: int) -> int:
        return node // self.nodes_per_leaf

    def classify(self, node_a: int, node_b: int) -> LinkClass:
        if node_a == node_b:
            return LinkClass.SELF
        if self.leaf_of(node_a) == self.leaf_of(node_b):
            return LinkClass.INTER_NODE
        return LinkClass.INTER_GROUP

    def hops(self, node_a: int, node_b: int) -> int:
        if node_a == node_b:
            return 0
        return 2 if self.leaf_of(node_a) == self.leaf_of(node_b) else 4

    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        la, lb = self.leaf_of(node_a), self.leaf_of(node_b)
        if la == lb:
            return ()
        lane_a = node_a % self.uplinks_per_leaf
        lane_b = node_b % self.uplinks_per_leaf
        return (("up", la, lane_a), ("up", lb, lane_b))

    def link_choices(self, node_a: int, node_b: int) -> tuple[tuple[Hashable, ...], ...]:
        """Adaptive routing picks a lane at each leaf independently."""
        la, lb = self.leaf_of(node_a), self.leaf_of(node_b)
        if la == lb:
            return ()
        return (
            tuple(("up", la, lane) for lane in range(self.uplinks_per_leaf)),
            tuple(("up", lb, lane) for lane in range(self.uplinks_per_leaf)),
        )

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"FatTree(nodes_per_leaf={self.nodes_per_leaf}, taper={self.taper})"


class Torus(NetworkTopology):
    """k-ary d-dimensional torus with dimension-order hop counting.

    Long paths pay per-hop latency; traffic that crosses the dimension-0
    midline additionally serializes on one of ``bisection_ways`` aggregated
    bisection-link resources, modelling the low bisection bandwidth the
    paper attributes to torus networks.
    """

    def __init__(self, dims: Sequence[int], bisection_ways: int = 4) -> None:
        self.dims = tuple(check_positive(f"dims[{i}]", d) for i, d in enumerate(dims))
        if not self.dims:
            raise ValueError("dims must be non-empty")
        self.bisection_ways = check_positive("bisection_ways", bisection_ways)
        self.n_nodes = math.prod(self.dims)

    def coords_of(self, node: int) -> tuple[int, ...]:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        coords = []
        for d in reversed(self.dims):
            coords.append(node % d)
            node //= d
        return tuple(reversed(coords))

    def _ring_dist(self, a: int, b: int, k: int) -> int:
        d = abs(a - b)
        return min(d, k - d)

    def hops(self, node_a: int, node_b: int) -> int:
        if node_a == node_b:
            return 0
        ca, cb = self.coords_of(node_a), self.coords_of(node_b)
        return sum(self._ring_dist(x, y, k) for x, y, k in zip(ca, cb, self.dims)) + 1

    def classify(self, node_a: int, node_b: int) -> LinkClass:
        if node_a == node_b:
            return LinkClass.SELF
        # More than half the diameter away in dim 0 => crosses the bisection.
        return LinkClass.INTER_GROUP if self._crosses_bisection(node_a, node_b) else LinkClass.INTER_NODE

    def _crosses_bisection(self, node_a: int, node_b: int) -> bool:
        k = self.dims[0]
        if k < 2:
            return False
        half = k // 2
        xa = self.coords_of(node_a)[0]
        xb = self.coords_of(node_b)[0]
        return (xa < half) != (xb < half)

    def shared_link_keys(self, node_a: int, node_b: int) -> tuple[Hashable, ...]:
        if node_a == node_b or not self._crosses_bisection(node_a, node_b):
            return ()
        lane = (node_a + node_b) % self.bisection_ways
        return (("bisect", lane),)

    def link_choices(self, node_a: int, node_b: int) -> tuple[tuple[Hashable, ...], ...]:
        """Adaptive routing spreads bisection crossings over the lanes."""
        if node_a == node_b or not self._crosses_bisection(node_a, node_b):
            return ()
        return (tuple(("bisect", lane) for lane in range(self.bisection_ways)),)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus(dims={self.dims})"
