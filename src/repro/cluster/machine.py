"""The :class:`Machine`: cluster shape + network topology + Hockney costs.

Everything the simulator needs to price a message between two ranks lives
here; :class:`Machine` is the single object passed around by the collectives
harness, the benchmarks, and the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.cluster.hockney import NIAGARA_LIKE, HockneyParameters, LinkCost
from repro.cluster.network import (
    DragonflyPlus,
    NetworkTopology,
    PermutedNodes,
    SingleSwitch,
)
from repro.cluster.spec import ClusterSpec, LinkClass
from repro.utils.rng import RandomState, resolve_rng


@dataclass(frozen=True)
class Machine:
    """A fully specified target machine.

    Attributes
    ----------
    spec:
        Node/socket/rank shape.
    network:
        Cross-node topology (classification, hops, shared bottlenecks).
    params:
        Hockney costs per link class plus host constants.
    """

    spec: ClusterSpec
    network: NetworkTopology
    params: HockneyParameters

    # ------------------------------------------------------------- link query
    def link_class(self, rank_a: int, rank_b: int) -> LinkClass:
        """Distance class of a rank pair, refined by the network topology."""
        base = self.spec.intra_node_class(rank_a, rank_b)
        if base is not LinkClass.INTER_NODE:
            return base
        return self.network.classify(self.spec.node_of(rank_a), self.spec.node_of(rank_b))

    def link_cost(self, rank_a: int, rank_b: int) -> LinkCost:
        return self.params.cost(self.link_class(rank_a, rank_b))

    def path_alpha(self, rank_a: int, rank_b: int) -> float:
        """Total startup latency: class alpha plus per-hop surcharge."""
        cls = self.link_class(rank_a, rank_b)
        return self.params.cost(cls).alpha + self.hop_extra_alpha(rank_a, rank_b)

    def hop_extra_alpha(self, rank_a: int, rank_b: int) -> float:
        """Latency surcharge for hops beyond the 2-hop base path."""
        cls = self.link_class(rank_a, rank_b)
        if cls in (LinkClass.INTER_NODE, LinkClass.INTER_GROUP):
            hops = self.network.hops(self.spec.node_of(rank_a), self.spec.node_of(rank_b))
            return self.params.per_hop_alpha * max(0, hops - 2)
        return 0.0

    def shared_link_keys(self, rank_a: int, rank_b: int) -> tuple[Hashable, ...]:
        """Bottleneck resources a cross-node message occupies (may be empty)."""
        na, nb = self.spec.node_of(rank_a), self.spec.node_of(rank_b)
        if na == nb:
            return ()
        return self.network.shared_link_keys(na, nb)

    def ptp_time(self, rank_a: int, rank_b: int, nbytes: int) -> float:
        """Uncontended point-to-point time estimate (no ports, no queueing)."""
        if rank_a == rank_b:
            return self.params.memcpy_time(nbytes)
        cost = self.link_cost(rank_a, rank_b)
        return self.path_alpha(rank_a, rank_b) + cost.serialization(nbytes)

    # ----------------------------------------------------------- constructors
    @classmethod
    def niagara_like(
        cls,
        nodes: int,
        sockets_per_node: int = 2,
        ranks_per_socket: int = 18,
        nodes_per_group: int | None = None,
        params: HockneyParameters = NIAGARA_LIKE,
    ) -> "Machine":
        """A Dragonfly+ machine shaped like the paper's testbed runs."""
        spec = ClusterSpec(nodes, sockets_per_node, ranks_per_socket)
        if nodes_per_group is None:
            nodes_per_group = max(2, nodes // 4) if nodes >= 4 else nodes
        network: NetworkTopology
        network = DragonflyPlus(nodes_per_group) if nodes > 1 else SingleSwitch()
        return cls(spec=spec, network=network, params=params)

    @classmethod
    def single_switch(
        cls,
        nodes: int,
        sockets_per_node: int = 2,
        ranks_per_socket: int = 4,
        params: HockneyParameters = NIAGARA_LIKE,
    ) -> "Machine":
        """Small flat machine, handy for tests."""
        return cls(
            spec=ClusterSpec(nodes, sockets_per_node, ranks_per_socket),
            network=SingleSwitch(),
            params=params,
        )

    # ------------------------------------------------------------- placements
    def with_node_permutation(self, perm) -> "Machine":
        """This machine under a different physical node assignment.

        Models a scheduler giving the job other nodes: logical node ``i``
        runs on physical node ``perm[i]``.  Rank numbering (and therefore
        every algorithm's pattern) is unchanged; only distances move.
        """
        from dataclasses import replace

        if len(tuple(perm)) != self.spec.nodes:
            raise ValueError(
                f"permutation has {len(tuple(perm))} entries for {self.spec.nodes} nodes"
            )
        return replace(self, network=PermutedNodes(self.network, perm))

    def random_placement(self, seed: RandomState = None) -> "Machine":
        """Shuffled node assignment — one draw of the scheduler lottery."""
        rng = resolve_rng(seed)
        return self.with_node_permutation(rng.permutation(self.spec.nodes))

    def describe(self) -> str:
        return f"{self.spec.describe()} over {self.network.describe()}"
