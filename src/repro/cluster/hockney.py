"""Hockney (alpha-beta) cost parameters per link distance class.

The paper models point-to-point time as ``alpha + m / beta`` (note it writes
``m/beta`` with beta in bytes/second).  Real machines have a different
(alpha, beta) per transport: shared memory within a socket, UPI/QPI across
sockets, InfiniBand across nodes, and a longer, more congested path across
the network's global links.  :class:`HockneyParameters` carries one
:class:`LinkCost` per :class:`LinkClass` plus memory-copy bandwidth and MPI
per-call overhead, and is the single source of truth for both the
discrete-event simulator and the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.spec import LinkClass
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LinkCost:
    """One Hockney pair: startup latency (s) and bandwidth (bytes/s)."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_non_negative("alpha", self.alpha)
        check_positive("beta", self.beta)

    def time(self, nbytes: int | float) -> float:
        """Uncontended transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.alpha + nbytes / self.beta

    def serialization(self, nbytes: int | float) -> float:
        """Time the link/port is exclusively occupied by ``nbytes``."""
        return nbytes / self.beta


@dataclass(frozen=True)
class HockneyParameters:
    """Per-class link costs plus host-side constants.

    Attributes
    ----------
    links:
        Mapping from :class:`LinkClass` to :class:`LinkCost`.  ``SELF`` is
        not required; self-messages cost a memory copy.
    memcpy_beta:
        Local memory-copy bandwidth (bytes/s) used for buffer staging
        (packing into ``main_buf``, temp buffers, rbuf copies).
    call_overhead:
        Per-MPI-call CPU overhead (s) charged for each isend/irecv posting.
    per_hop_alpha:
        Extra latency added per network hop beyond the first (used by
        hop-counted topologies such as the torus).
    nic_message_overhead:
        Per-message processing time at a node's NIC (the message-rate
        limit of real HCAs); serializes a node's traffic for small
        messages, which is what the paper's node-level serialization
        (Eq. 5) models.
    link_message_overhead:
        Per-message processing on a shared global link.
    jitter:
        System-noise amplitude: each network message's startup latency is
        multiplied by ``1 + U(0, jitter)`` (deterministic per engine seed).
        0 (default) = noiseless; ~0.3 resembles a busy production fabric.
    adaptive_routing:
        UGAL-like lane selection: each message crossing a shared bottleneck
        picks the least-loaded of the alternative lanes the network offers
        (:meth:`NetworkTopology.link_choices`).  ``False`` falls back to
        oblivious hash routing.
    """

    links: dict[LinkClass, LinkCost]
    memcpy_beta: float = 6.0e9
    call_overhead: float = 5.0e-8
    per_hop_alpha: float = 1.0e-7
    nic_message_overhead: float = 1.5e-7
    link_message_overhead: float = 2.0e-8
    jitter: float = 0.0
    adaptive_routing: bool = True

    def __post_init__(self) -> None:
        check_positive("memcpy_beta", self.memcpy_beta)
        check_non_negative("call_overhead", self.call_overhead)
        check_non_negative("per_hop_alpha", self.per_hop_alpha)
        check_non_negative("nic_message_overhead", self.nic_message_overhead)
        check_non_negative("link_message_overhead", self.link_message_overhead)
        check_non_negative("jitter", self.jitter)
        required = {
            LinkClass.INTRA_SOCKET,
            LinkClass.INTER_SOCKET,
            LinkClass.INTER_NODE,
            LinkClass.INTER_GROUP,
        }
        missing = required - set(self.links)
        if missing:
            raise ValueError(f"missing link classes: {sorted(c.name for c in missing)}")

    def cost(self, link_class: LinkClass) -> LinkCost:
        """Link cost for a class; ``SELF`` maps to a memcpy-rate pseudo-link."""
        if link_class is LinkClass.SELF:
            return LinkCost(alpha=0.0, beta=self.memcpy_beta)
        return self.links[link_class]

    def memcpy_time(self, nbytes: int | float) -> float:
        """Time to copy ``nbytes`` through local memory."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.memcpy_beta

    def with_overrides(self, **link_costs: LinkCost) -> "HockneyParameters":
        """Copy with some classes replaced, e.g. ``with_overrides(INTER_NODE=...)``."""
        links = dict(self.links)
        for name, cost in link_costs.items():
            links[LinkClass[name]] = cost
        return replace(self, links=links)


#: Default parameters loosely calibrated to the paper's testbed class
#: (Skylake/Cascade Lake nodes, EDR InfiniBand, Dragonfly+): sub-microsecond
#: shared-memory latency, ~1 us RDMA latency, and a global-link path with
#: higher startup cost and reduced effective bandwidth.
NIAGARA_LIKE = HockneyParameters(
    links={
        LinkClass.INTRA_SOCKET: LinkCost(alpha=3.0e-7, beta=8.0e9),
        LinkClass.INTER_SOCKET: LinkCost(alpha=6.0e-7, beta=5.0e9),
        LinkClass.INTER_NODE: LinkCost(alpha=1.2e-6, beta=1.0e10),
        LinkClass.INTER_GROUP: LinkCost(alpha=2.2e-6, beta=7.0e9),
    },
    memcpy_beta=6.0e9,
    call_overhead=5.0e-8,
    per_hop_alpha=1.0e-7,
)
