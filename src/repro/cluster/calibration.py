"""Ping-pong calibration of the analytic model's (alpha, beta).

The paper parameterizes its performance model "based on parameters obtained
from ping-pong tests conducted on the Niagara cluster".  We do the same
against our simulated machine: run a ping-pong between two ranks through the
discrete-event simulator at several message sizes, then least-squares fit
Hockney's ``t = alpha + m / beta`` to the one-way times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Machine
from repro.utils.sizes import parse_size

#: Default sizes used for the fit: small sizes pin alpha, large sizes pin beta.
DEFAULT_PING_PONG_SIZES = (64, 1024, 8192, 65536, 524288, 4194304)


@dataclass(frozen=True)
class HockneyFit:
    """Fitted Hockney parameters: ``time(m) = alpha + m / beta``."""

    alpha: float
    beta: float
    residual: float

    def time(self, nbytes: float) -> float:
        return self.alpha + nbytes / self.beta


def simulated_ping_pong(
    machine: Machine,
    rank_a: int = 0,
    rank_b: int | None = None,
    sizes: tuple[int, ...] = DEFAULT_PING_PONG_SIZES,
    repeats: int = 3,
) -> dict[int, float]:
    """One-way latency per message size between two ranks on ``machine``.

    ``rank_b`` defaults to a rank on a *different node* when the machine has
    more than one node (the paper's ping-pong crosses the network), else the
    farthest rank available.  Returns {size: one_way_seconds}.
    """
    # Imported late: repro.sim depends on repro.cluster, not vice versa.
    from repro.sim.engine import Engine
    from repro.sim.communicator import SimCommunicator

    n = machine.spec.n_ranks
    if rank_b is None:
        rank_b = machine.spec.ranks_per_node if n > machine.spec.ranks_per_node else n - 1
    if rank_a == rank_b:
        raise ValueError("ping-pong needs two distinct ranks")

    results: dict[int, float] = {}
    for size in sizes:
        size = parse_size(size)
        engine = Engine(n_ranks=n, machine=machine)

        def pinger(comm: SimCommunicator, size: int = size):
            for i in range(repeats):
                yield comm.wait(comm.isend(rank_b, size, tag=2 * i))
                yield comm.wait(comm.irecv(rank_b, tag=2 * i + 1))

        def ponger(comm: SimCommunicator, size: int = size):
            for i in range(repeats):
                yield comm.wait(comm.irecv(rank_a, tag=2 * i))
                yield comm.wait(comm.isend(rank_a, size, tag=2 * i + 1))

        def idle(comm: SimCommunicator):
            return
            yield  # pragma: no cover - makes this a generator function

        for rank in range(n):
            if rank == rank_a:
                engine.spawn(rank, pinger)
            elif rank == rank_b:
                engine.spawn(rank, ponger)
            else:
                engine.spawn(rank, idle)
        engine.run()
        round_trip = engine.finish_time(rank_a) / repeats
        results[size] = round_trip / 2.0
    return results


def fit_hockney(samples: dict[int, float]) -> HockneyFit:
    """Least-squares fit of ``t = alpha + m / beta`` to {size: time} samples."""
    if len(samples) < 2:
        raise ValueError("need at least two (size, time) samples to fit")
    sizes = np.array(sorted(samples), dtype=float)
    times = np.array([samples[int(s)] for s in sizes], dtype=float)
    design = np.column_stack([np.ones_like(sizes), sizes])
    coeffs, residuals, _, _ = np.linalg.lstsq(design, times, rcond=None)
    alpha, inv_beta = float(coeffs[0]), float(coeffs[1])
    if inv_beta <= 0:
        raise ValueError("fit produced non-positive bandwidth; samples look degenerate")
    alpha = max(alpha, 0.0)
    residual = float(residuals[0]) if residuals.size else 0.0
    return HockneyFit(alpha=alpha, beta=1.0 / inv_beta, residual=residual)


def calibrate(machine: Machine, **kwargs) -> HockneyFit:
    """Ping-pong then fit, in one call (what the benchmarks use)."""
    return fit_hockney(simulated_ping_pong(machine, **kwargs))
