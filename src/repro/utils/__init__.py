"""Small shared utilities: validation, intervals, RNG handling, size parsing.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` may import from here, but :mod:`repro.utils` imports nothing
from the rest of the package.
"""

from repro.utils.intervals import Interval, halving_steps
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.sizes import format_size, parse_size
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "Interval",
    "halving_steps",
    "RandomState",
    "resolve_rng",
    "format_size",
    "parse_size",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
