"""Seed / RNG resolution used by all stochastic generators in the package.

Every public API that involves randomness takes a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`; :func:`resolve_rng` normalizes all three.
"""

from __future__ import annotations

import numpy as np

#: Type alias accepted by every ``seed=`` parameter in the package.
RandomState = int | np.random.Generator | None


def resolve_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged (shared stream);
    an int produces a deterministic fresh generator; ``None`` draws fresh
    OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed).__name__}")


def spawn_rng(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` keyed by ``key``.

    Used when a single experiment seed must fan out into per-trial or
    per-rank streams without correlations.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (key * 0x9E3779B97F4A7C15 % (2**63))
    return np.random.default_rng(seed % (2**63))
