"""Human-friendly byte-size parsing and formatting for benchmark configs.

The paper sweeps message sizes "from 8 bytes to 4 megabytes"; benchmark
configuration files and reports use strings like ``"64KB"``; these helpers
convert between the two, using binary (1024) multiples as MPI benchmarks do.
"""

from __future__ import annotations

import re

_UNITS = {
    "": 1,
    "B": 1,
    "KB": 1024,
    "KIB": 1024,
    "MB": 1024**2,
    "MIB": 1024**2,
    "GB": 1024**3,
    "GIB": 1024**3,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse ``"64KB"`` / ``"4MB"`` / ``"8"`` / ``512`` into a byte count."""
    if isinstance(text, (int,)) and not isinstance(text, bool):
        if text < 0:
            raise ValueError(f"size must be >= 0, got {text}")
        return text
    if not isinstance(text, str):
        raise TypeError(f"size must be str or int, got {type(text).__name__}")
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = match.groups()
    unit = unit.upper()
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    nbytes = float(value) * _UNITS[unit]
    if nbytes != int(nbytes):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(nbytes)


def format_size(nbytes: int) -> str:
    """Format a byte count the way the paper labels its x-axes (8B, 64KB, 4MB)."""
    if nbytes < 0:
        raise ValueError(f"size must be >= 0, got {nbytes}")
    for unit, factor in (("GB", 1024**3), ("MB", 1024**2), ("KB", 1024)):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{unit}"
    return f"{nbytes}B"
