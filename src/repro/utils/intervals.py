"""Closed integer rank intervals and halving arithmetic.

The distance-halving algorithm repeatedly splits the rank interval
``[0, n-1]`` around its midpoint.  :class:`Interval` captures the closed
interval semantics used throughout Algorithm 1 of the paper (``h1``/``h2``),
and :func:`halving_steps` gives the number of halving steps until at most
``L`` ranks remain, matching the paper's ``ceil(log2(n / L))`` bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed integer interval ``[start, end]`` of ranks.

    Iteration, containment and ``len`` behave like the equivalent
    ``range(start, end + 1)``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty interval: start={self.start} > end={self.end}")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, rank: int) -> bool:
        return self.start <= rank <= self.end

    def __iter__(self):
        return iter(range(self.start, self.end + 1))

    @property
    def mid(self) -> int:
        """Midpoint rank, ``floor((start + end) / 2)`` as in Algorithm 1."""
        return (self.start + self.end) // 2

    def split(self) -> tuple["Interval", "Interval"]:
        """Split into (lower, upper) halves around :attr:`mid`.

        The lower half always contains the midpoint, matching the paper's
        ``p <= mid_rank`` test.  Splitting a single-element interval raises
        :class:`ValueError`.
        """
        if len(self) < 2:
            raise ValueError(f"cannot split interval of length {len(self)}")
        return Interval(self.start, self.mid), Interval(self.mid + 1, self.end)

    def halves_for(self, rank: int) -> tuple["Interval", "Interval"]:
        """Return ``(h1, h2)`` for ``rank``: its own half and the opposite one."""
        if rank not in self:
            raise ValueError(f"rank {rank} not in {self}")
        lower, upper = self.split()
        return (lower, upper) if rank in lower else (upper, lower)

    def intersect_sorted(self, ranks) -> list[int]:
        """Intersect a sorted iterable of ranks with this interval."""
        return [r for r in ranks if self.start <= r <= self.end]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}..{self.end}]"


def halving_steps(n: int, ranks_per_socket: int) -> int:
    """Number of halving steps until at most ``ranks_per_socket`` ranks remain.

    Starting from an interval of ``n`` ranks and halving (worst half keeps
    ``ceil(size / 2)``), this returns how many splits occur before the
    current half has ``<= ranks_per_socket`` members.  For powers of two
    this equals ``ceil(log2(n / L))`` — the paper's step count (its
    ``ceil(log(n/L)) + 1`` counts the same loop with a trailing increment).
    """
    n = check_positive("n", n)
    L = check_positive("ranks_per_socket", ranks_per_socket)
    steps = 0
    size = n
    while size > L:
        size = math.ceil(size / 2)
        steps += 1
    return steps
