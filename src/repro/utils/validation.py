"""Argument-validation helpers used across the package.

All helpers raise :class:`ValueError` or :class:`TypeError` with a message
naming the offending parameter, and return the (possibly coerced) value so
they can be used inline::

    self.nodes = check_positive("nodes", nodes)
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Require ``value`` to be an instance of ``types``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: Any) -> int | float:
    """Require a strictly positive number; integral values are returned as int."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return int(value) if isinstance(value, Integral) else float(value)


def check_non_negative(name: str, value: Any) -> int | float:
    """Require a number >= 0; integral values are returned as int."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return int(value) if isinstance(value, Integral) else float(value)


def check_probability(name: str, value: Any) -> float:
    """Require a float in [0, 1]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: Any, lo: float, hi: float) -> int | float:
    """Require ``lo <= value <= hi``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return int(value) if isinstance(value, Integral) else float(value)
