"""Fig. 8 — pattern-creation overhead of DH vs Common Neighbor.

Paper shape: the one-time setup of DH costs more than CN's (the paper
reports 20-50% more; the gap grows with density because the agent
negotiation exchanges more signals), and the signal volume stays within
the quadratic worst case of Section VII-D.
"""

from repro.bench.figures import fig8_overhead


def test_fig8_overhead(benchmark, scale):
    payload = benchmark.pedantic(lambda: fig8_overhead(scale), rounds=1, iterations=1)
    rows = payload["rows"]
    n = payload["ranks"]

    # DH setup is at least as expensive as CN setup, and grows with density.
    ratios = [r["dh_over_cn"] for r in rows]
    assert all(rt >= 1.0 for rt in ratios)
    assert ratios[-1] > ratios[0]

    # Section VII-D worst case for the agent-selection negotiation: at most
    # 4 signals per pair of ranks on different sockets, 4 * n(n-L)/2 total.
    L = scale.ranks_per_socket
    bound = 2 * n * (n - L)
    assert all(r["dh_negotiation_messages"] <= bound for r in rows)

    # The overhead is one-time: it does not depend on the message size, so
    # the records carry no per-size dimension — structural sanity.
    assert all("msg_size" not in r for r in rows)
