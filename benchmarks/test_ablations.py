"""Ablation benches for the design decisions called out in DESIGN.md.

1. Load-aware agent selection (max shared outgoing neighbors) vs random
   candidate matching: the load-aware choice should never be meaningfully
   slower, and should win on dense graphs where shared neighbors abound.
2. Halving stop granularity: stopping at the socket (paper's ``L``) vs
   halving all the way to single ranks; the intra-socket phase exists
   precisely because socket-local delivery is cheaper than more halving
   rounds with doubled buffers.
"""

from repro.bench.figures import ablation_agent_policy, ablation_stop_granularity
from repro.bench.reporting import geometric_mean


def test_ablation_agent_policy(benchmark, scale):
    payload = benchmark.pedantic(
        lambda: ablation_agent_policy(scale), rounds=1, iterations=1
    )
    rows = payload["rows"]
    # Finding (documented in EXPERIMENTS.md): load-awareness pays on sparse
    # and imbalanced patterns — the classes the paper motivates it with —
    # and converges with (or loses to) random matching on dense uniform
    # graphs, where any maximal matching offloads nearly everything.
    by_workload = {r["workload"]: r["random_over_aware"] for r in rows}
    # Imbalanced scale-free workload: load-aware wins outright.
    assert by_workload["scale-free"] > 1.05
    # Sparse uniform graphs: wins or ties.
    sparse = [v for k, v in by_workload.items() if k in ("ER d=0.05", "ER d=0.1")]
    assert geometric_mean(sparse) > 1.0
    # Overall: never a collapse.
    assert geometric_mean(list(by_workload.values())) > 0.85


def test_ablation_stop_granularity(benchmark, scale):
    payload = benchmark.pedantic(
        lambda: ablation_stop_granularity(scale), rounds=1, iterations=1
    )
    rows = payload["rows"]
    # Halving to single ranks must not beat the socket stop on average —
    # the socket-local final phase is the cheaper tail.
    avg = geometric_mean([r["single_over_socket"] for r in rows])
    assert avg > 0.9
