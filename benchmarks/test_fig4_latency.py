"""Fig. 4 — simulated latency of DH vs default (naive) on Random Sparse Graphs.

The paper's claims for this figure: for messages below ~64KB the proposed
algorithm has lower latency, particularly for dense graphs; at and above
64KB it is on par or better.  We assert the same ordering on the simulated
machine.
"""

from repro.bench.figures import fig4_latency
from repro.utils.sizes import parse_size


def test_fig4_latency(benchmark, scale):
    payload = benchmark.pedantic(lambda: fig4_latency(scale), rounds=1, iterations=1)
    rows = payload["rows"]

    small = [r for r in rows if r["msg_size"] <= parse_size("4KB")]
    dense_small = [r for r in small if r["density"] >= 0.3]
    # DH wins every dense small-message cell.
    assert all(r["measured_speedup"] > 1.0 for r in dense_small)
    # And wins the majority of all small-message cells.
    wins = sum(r["measured_speedup"] > 1.0 for r in small)
    assert wins >= 0.8 * len(small)

    # Large messages: on par or better (the paper: "on par ... and in some
    # cases outperforms") — allow a modest regression margin.
    large = [r for r in rows if r["msg_size"] >= parse_size("512KB")]
    assert all(r["measured_speedup"] > 0.8 for r in large)
