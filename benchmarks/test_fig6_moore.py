"""Fig. 6 — Moore-neighborhood speedups over the default algorithm.

Paper shape: DH reaches large speedups for small messages on dense
neighborhoods (up to 14x), outperforms for medium messages on the denser
neighborhoods (up to ~3x), and stays competitive at 4MB.
"""

from repro.bench.figures import fig6_moore, fig6_variance_study
from repro.utils.sizes import parse_size


def test_fig6_moore(benchmark, scale):
    payload = benchmark.pedantic(lambda: fig6_moore(scale), rounds=1, iterations=1)
    rows = payload["rows"]

    small = parse_size("4KB")
    dense = [r for r in rows if r["neighbors"] >= 24]

    # Small messages, dense neighborhoods: clear DH wins.
    assert all(r["dh_speedup"] > 1.2 for r in dense if r["msg_size"] == small)
    # The densest configuration gives the biggest small-message speedup.
    small_rows = [r for r in rows if r["msg_size"] == small]
    best = max(small_rows, key=lambda r: r["dh_speedup"])
    assert best["neighbors"] == max(r["neighbors"] for r in small_rows)

    # Large messages: structured locality keeps DH from collapsing
    # (the paper's contrast with Random Sparse Graphs).
    large = [r for r in rows if r["msg_size"] == parse_size("4MB")]
    assert all(r["dh_speedup"] > 0.7 for r in large)


def test_fig6_variance_study(benchmark, scale):
    """The paper's stability observation: under changing node placements the
    default algorithm's latency moves more than Distance Halving's (checked
    in the latency-bound regime; see the driver's reproduction note)."""
    payload = benchmark.pedantic(
        lambda: fig6_variance_study(scale), rounds=1, iterations=1
    )
    rows = {r["algorithm"]: r for r in payload["rows"]}
    naive, dh = rows["naive"], rows["distance_halving"]
    # DH is faster on every placement, not just on average.
    assert dh["max"] < naive["min"]
    # And no less stable than the default algorithm.
    assert dh["cv"] <= naive["cv"] * 1.2
    assert naive["cv"] < 0.5 and dh["cv"] < 0.5
