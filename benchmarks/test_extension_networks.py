"""Extension bench — DH's benefit across network topologies (Section IV).

The paper argues the distant-rank bottleneck is not Dragonfly-specific:
tapered fat trees and tori have low bisection bandwidth too.  This bench
runs the same Random Sparse Graph workload on all three network models and
pins the claim that Distance Halving wins on every one of them.
"""

from repro.bench.figures import ext_network_sensitivity


def test_extension_network_sensitivity(benchmark, scale):
    payload = benchmark.pedantic(
        lambda: ext_network_sensitivity(scale), rounds=1, iterations=1
    )
    rows = payload["rows"]
    networks = {r["network"] for r in rows}
    assert networks == {"dragonfly+", "fat-tree", "torus"}

    # DH wins on every network at both message sizes.
    assert all(r["speedup"] > 1.0 for r in rows)
    # And decisively for small messages everywhere.
    small = [r for r in rows if r["msg_size"] == 64]
    assert all(r["speedup"] > 2.0 for r in small)
