"""Fig. 2 — performance model: Distance Halving vs naive at paper scale.

Regenerates the model grid of the paper's Fig. 2 (densities 0.05-0.7 x
message sizes 8B-4MB at n=2000, S=2, L=20) with alpha/beta fitted from a
simulated ping-pong, and checks the figure's headline shape: DH wins by an
order of magnitude for small messages on dense graphs, and the advantage
shrinks (eventually inverts) as messages grow.
"""

from repro.bench.figures import fig2_model


def test_fig2_model(benchmark, scale):
    payload = benchmark.pedantic(lambda: fig2_model(scale), rounds=1, iterations=1)
    rows = payload["rows"]
    by_cell = {(r["density"], r["msg_size"]): r["speedup"] for r in rows}

    # Dense graph, small message: model predicts a large DH win.
    assert by_cell[(0.7, 8)] > 10.0
    # Advantage shrinks monotonically in message size for every density.
    for density in (0.05, 0.3, 0.7):
        sizes = sorted(s for d, s in by_cell if d == density)
        speedups = [by_cell[(density, s)] for s in sizes]
        assert speedups[0] == max(speedups)
        assert speedups[-1] < speedups[0] / 2
    # Denser graphs benefit more at a fixed small size.
    assert by_cell[(0.7, 8)] > by_cell[(0.05, 8)]
