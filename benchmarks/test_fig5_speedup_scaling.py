"""Fig. 5 — speedup scaling of DH and Common Neighbor over the default.

Paper shape: speedups grow with density (peaking for small messages on the
densest graphs), DH beats best-K CN in most cells, per-density *average*
speedups over all sizes rise from ~1.25x (δ=0.05) to ~8x (δ=0.7), and the
agent-selection success rate at δ=0.05 is high (~80%).
"""

from repro.bench.figures import fig5_speedup_scaling


def test_fig5_speedup_scaling(benchmark, scale):
    payload = benchmark.pedantic(
        lambda: fig5_speedup_scaling(scale), rounds=1, iterations=1
    )
    summary = payload["summary"]
    largest = max(r["ranks"] for r in summary)
    by_density = {r["density"]: r for r in summary if r["ranks"] == largest}

    # Average speedup over naive grows with density and exceeds 1 everywhere.
    assert by_density[0.05]["dh_avg_speedup"] > 1.0
    assert by_density[0.7]["dh_avg_speedup"] > by_density[0.05]["dh_avg_speedup"]
    assert by_density[0.7]["dh_avg_speedup"] > 2.0

    # DH beats the best-K Common Neighbor on dense graphs.
    assert by_density[0.7]["dh_avg_speedup"] > by_density[0.7]["cn_avg_speedup"]

    # §VII-A: high agent-selection success rate even on the sparsest graph.
    assert by_density[0.05]["agent_success_rate"] > 0.5

    # Peak speedup lives in the small-message, dense, largest-scale corner.
    rows = payload["rows"]
    peak = max(rows, key=lambda r: r["dh_speedup"])
    assert peak["density"] >= 0.3
    assert peak["msg_size"] <= 4096
