"""Extension bench — distance-halving neighborhood alltoall (Section VIII).

Not a paper figure: the paper lists alltoall as future work.  This bench
pins the extension's expected physics so regressions in the shared halving
machinery are caught from the alltoall side too.
"""

from repro.bench.figures import ext_alltoall


def test_extension_alltoall(benchmark, scale):
    payload = benchmark.pedantic(lambda: ext_alltoall(scale), rounds=1, iterations=1)
    rows = payload["rows"]

    small = [r for r in rows if r["msg_size"] == 64]
    dense_small = [r for r in small if r["density"] >= 0.3]
    # Message-count reduction carries over from allgather...
    assert all(r["dh_messages"] < r["naive_messages"] for r in dense_small)
    # ...and wins clearly in the latency-bound regime.
    assert all(r["speedup"] > 2.0 for r in dense_small)

    # Bandwidth-bound: forwarding re-pays distinct bytes, so no collapse but
    # no miracle either.
    medium = [r for r in rows if r["msg_size"] == 4096]
    assert all(r["speedup"] > 0.5 for r in medium)
    assert all(r["dh_bytes"] >= r["naive_bytes"] for r in medium)
