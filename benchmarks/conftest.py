"""Shared fixtures for the figure-regeneration benchmarks.

Scale is controlled by ``REPRO_BENCH_SCALE`` (small/medium/large/paper);
every benchmark archives its structured rows as JSON under ``results/``
and prints the paper-figure table (visible with ``pytest -s``).
"""

import pytest

from repro.bench.config import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()
