"""Fig. 7 — SpMM kernel speedups over the default algorithm.

Paper shape: DH wins on the denser matrices (Heart1, comsol: 3.3-4.9x),
stays at least on par on the very sparse small ones (ash292: ~0.93x floor),
and beats Common Neighbor in most cases.  Every run is numerically verified
against a direct ``X @ Y``.
"""

from repro.bench.figures import fig7_spmm


def test_fig7_spmm(benchmark, scale):
    payload = benchmark.pedantic(lambda: fig7_spmm(scale), rounds=1, iterations=1)
    rows = {r["matrix"]: r for r in payload["rows"]}

    # Dense matrices benefit most.
    assert rows["Heart1"]["dh_speedup"] > 1.5
    assert rows["comsol"]["dh_speedup"] > 1.0
    # Sparse/small matrices: no collapse (paper floor is 0.93x).
    assert all(r["dh_speedup"] > 0.75 for r in rows.values())
    # DH >= CN on the majority of matrices.
    dh_wins = sum(r["dh_speedup"] >= r["cn_speedup"] for r in rows.values())
    assert dh_wins >= len(rows) // 2 + 1
